#include "dist/kernel.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>
#include <cstddef>
#include <cstring>
#include <limits>
#include <stdexcept>
#include <type_traits>

namespace lec {

namespace {

// The simd::CrossInto / SumStride2 / DivStride2 kernels address Bucket
// arrays as interleaved doubles (value at 2i, prob at 2i+1).
static_assert(std::is_standard_layout_v<Bucket>);
static_assert(sizeof(Bucket) == 2 * sizeof(double));
static_assert(offsetof(Bucket, value) == 0);
static_assert(offsetof(Bucket, prob) == sizeof(double));

/// Σ raw[i].prob for i < n, in strict index order. Deliberately NOT
/// simd::SumStride2: FinishInto's normalization divisor must match the
/// legacy Distribution constructor bit for bit at every dispatch level
/// (the kernel/legacy bit-faithfulness contract at the top of kernel.h,
/// and ViewContentHash == Distribution::ContentHash keying in the EC
/// cache, both hang off it). The divides that consume the divisor are
/// elementwise and stay vectorized.
double BucketProbSum(const Bucket* raw, size_t n) {
  double s = 0;
  for (size_t i = 0; i < n; ++i) s += raw[i].prob;
  return s;
}

/// Writes the surviving `n` buckets of `raw` out as SoA.
DistView EmitSoA(const Bucket* raw, size_t n, DistArena* arena) {
  double* values = arena->AllocDoubles(n);
  double* probs = arena->AllocDoubles(n);
  for (size_t i = 0; i < n; ++i) {
    values[i] = raw[i].value;
    probs[i] = raw[i].prob;
  }
  return {values, probs, n};
}

}  // namespace

DistView UnitPointMassView() {
  static const double kOne[1] = {1.0};
  return {kOne, kOne, 1};
}

double ViewMean(DistView v) { return simd::Dot(v.values, v.probs, v.n); }

double ViewTotalMass(DistView v) { return simd::Sum(v.probs, v.n); }

uint64_t ViewContentHash(DistView v) {
  // FNV-1a over interleaved (value, prob) bit patterns — must stay in
  // lockstep with Distribution's constructor hash.
  uint64_t h = 1469598103934665603ull;
  auto mix = [&h](double d) {
    h = (h ^ std::bit_cast<uint64_t>(d)) * 1099511628211ull;
  };
  for (size_t i = 0; i < v.n; ++i) {
    mix(v.values[i]);
    mix(v.probs[i]);
  }
  return h;
}

bool ViewEquals(DistView a, DistView b) {
  if (a.n != b.n) return false;
  for (size_t i = 0; i < a.n; ++i) {
    if (a.values[i] != b.values[i] || a.probs[i] != b.probs[i]) return false;
  }
  return true;
}

DistView FinishInto(Bucket* raw, size_t n, DistArena* arena) {
  // The Distribution-constructor pipeline, step for step, so kernel and
  // legacy outputs are bit-identical: validate, sort, merge duplicate
  // values (probs add in sequence order), drop non-positive mass,
  // normalize, dust pass. Validation throws exactly where the constructor
  // would — a kernel product that overflows to inf must fail the same way
  // the legacy Distribution path fails, not propagate garbage.
  for (size_t i = 0; i < n; ++i) {
    if (!std::isfinite(raw[i].value)) {
      throw std::invalid_argument("bucket value must be finite");
    }
    if (!std::isfinite(raw[i].prob) || raw[i].prob < 0) {
      throw std::invalid_argument(
          "bucket probability must be finite and non-negative");
    }
  }
  std::sort(raw, raw + n,
            [](const Bucket& a, const Bucket& b) { return a.value < b.value; });
  size_t merged = 0;
  for (size_t i = 0; i < n; ++i) {
    if (merged > 0 && raw[merged - 1].value == raw[i].value) {
      raw[merged - 1].prob += raw[i].prob;
    } else {
      raw[merged++] = raw[i];
    }
  }
  size_t kept = 0;
  for (size_t i = 0; i < merged; ++i) {
    if (raw[i].prob > 0) raw[kept++] = raw[i];
  }
  double total = BucketProbSum(raw, kept);
  if (kept == 0 || total <= 0 || !std::isfinite(total)) {
    throw std::invalid_argument("total probability mass must be positive");
  }
  simd::DivStride2(&raw[0].prob, kept, total);

  constexpr double kEpsilonMass = 1e-12;
  bool any_dust = false;
  for (size_t i = 0; i < kept; ++i) any_dust |= raw[i].prob < kEpsilonMass;
  if (any_dust) {
    size_t live = 0;
    for (size_t i = 0; i < kept; ++i) {
      if (raw[i].prob >= kEpsilonMass) raw[live++] = raw[i];
    }
    kept = live;
    double kept_mass = BucketProbSum(raw, kept);
    if (kept > 0) simd::DivStride2(&raw[0].prob, kept, kept_mass);
  }
  return EmitSoA(raw, kept, arena);
}

DistView CopyInto(DistView in, DistArena* arena) {
  double* values = arena->AllocDoubles(in.n);
  double* probs = arena->AllocDoubles(in.n);
  std::memcpy(values, in.values, in.n * sizeof(double));
  std::memcpy(probs, in.probs, in.n * sizeof(double));
  return {values, probs, in.n};
}

DistView ProductInto(DistView a, DistView b, DistArena* arena) {
  Bucket* raw = arena->AllocArray<Bucket>(a.n * b.n);
  size_t idx = 0;
  for (size_t i = 0; i < a.n; ++i) {
    simd::CrossInto(a.values[i], a.probs[i], b.values, b.probs, b.n,
                    reinterpret_cast<double*>(raw + idx));
    idx += b.n;
  }
  return FinishInto(raw, idx, arena);
}

DistView MixInto(DistView a, DistView b, double w, DistArena* arena) {
  if (!(w >= 0.0 && w <= 1.0)) {  // same throw as Distribution::MixWith
    throw std::invalid_argument("mixture weight must be in [0, 1]");
  }
  Bucket* raw = arena->AllocArray<Bucket>(a.n + b.n);
  // CrossInto with av = 1.0 copies values bit-exactly (1.0·v == v in IEEE
  // for every finite or infinite v; a NaN value throws in FinishInto on
  // either path) while scaling probs — same arithmetic as the historical
  // per-bucket loop.
  simd::CrossInto(1.0, w, a.values, a.probs, a.n,
                  reinterpret_cast<double*>(raw));
  simd::CrossInto(1.0, 1.0 - w, b.values, b.probs, b.n,
                  reinterpret_cast<double*>(raw + a.n));
  return FinishInto(raw, a.n + b.n, arena);
}

DistView RebucketInto(DistView in, size_t max_buckets,
                      RebucketStrategy strategy, DistArena* arena) {
  if (max_buckets == 0) {  // same throw as Distribution::Rebucket
    throw std::invalid_argument("max_buckets must be positive");
  }
  if (in.n <= max_buckets) return in;

  Bucket* raw = arena->AllocArray<Bucket>(max_buckets);
  size_t cells = 0;
  double cell_mass = 0, cell_weighted = 0;
  auto close_cell = [&] {
    if (cell_mass > 0) {
      raw[cells++] = {cell_weighted / cell_mass, cell_mass};
      cell_mass = cell_weighted = 0;
    }
  };

  if (strategy == RebucketStrategy::kEqualWidth) {
    double lo = in.values[0];
    double width =
        (in.values[in.n - 1] - lo) / static_cast<double>(max_buckets);
    size_t cur_cell = 0;
    for (size_t i = 0; i < in.n; ++i) {
      size_t cell =
          width > 0
              ? std::min(max_buckets - 1,
                         static_cast<size_t>((in.values[i] - lo) / width))
              : 0;
      if (cell != cur_cell) {
        close_cell();
        cur_cell = cell;
      }
      cell_mass += in.probs[i];
      cell_weighted += in.values[i] * in.probs[i];
    }
  } else {  // kEqualProb
    double target = 1.0 / static_cast<double>(max_buckets);
    size_t cells_closed = 0;
    double mass_before = 0;
    for (size_t i = 0; i < in.n; ++i) {
      cell_mass += in.probs[i];
      cell_weighted += in.values[i] * in.probs[i];
      mass_before += in.probs[i];
      if (cells_closed + 1 < max_buckets &&
          mass_before >=
              static_cast<double>(cells_closed + 1) * target - 1e-12) {
        close_cell();
        ++cells_closed;
      }
    }
  }
  close_cell();
  // Rebucket hands its cells back through the constructor (renormalizing
  // away the summation rounding); mirror that final pass.
  return FinishInto(raw, cells, arena);
}

double StepThreshold(double m, double (*f)(double), double x0) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  if (m <= 0) return -kInf;  // f(x) >= 0 >= m for every x in the domain
  if (!std::isfinite(x0)) return x0;
  double x = x0;
  // Walk down while the predicate still holds, then up to the first x
  // satisfying it. Correctly-rounded sqrt plateaus are ~2 ulps wide, so the
  // bounds are generous; non-convergence (pathological m) falls back to
  // the raw guess.
  int steps = 0;
  while (steps < 256 && x > 0 && f(x) >= m) {
    x = std::nextafter(x, -kInf);
    ++steps;
  }
  if (steps == 256) return x0;
  steps = 0;
  while (steps < 256 && f(x) < m) {
    x = std::nextafter(x, kInf);
    ++steps;
  }
  if (f(x) < m) return kInf;  // m above f's range: never include
  return x;
}

}  // namespace lec
