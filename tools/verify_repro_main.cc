// verify_repro — replays one fuzz counterexample seed with diagnostics.
//
//   verify_repro [--mc-samples=N] <seed> [<seed> ...]
//
// Each seed is a FuzzCase encoding (e.g. "f1:star:5:12345:3:1:1") as
// emitted by verify_fuzz. The case's workload is rebuilt exactly, the full
// invariant catalog re-runs, and the oracle's view of the query (optimum,
// spectrum width, per-strategy objectives and regrets) is printed, so the
// failure can be understood — and fixed — without rerunning the whole fuzz
// campaign. Flags apply to every seed regardless of argument order.
// --mc-samples widens the Monte-Carlo invariant's sample budget (more
// samples ⇒ tighter interval ⇒ a real analytic-EC bug stays flagged while
// sampling noise washes out). Exit: 0 when every seed now passes, 1 when
// any still fails, 2 on usage errors.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "verify/fuzz_driver.h"

int main(int argc, char** argv) {
  lec::verify::FuzzOptions options;  // full catalog, MC included
  std::vector<lec::verify::FuzzCase> cases;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--mc-samples=", 13) == 0) {
      // Full-consumption, digits-only parse: a mistyped value must be a
      // usage error, not a silently different sample budget (strtoull
      // would wrap a leading '-' to a ~2^64 budget and hang the replay).
      const char* value = argv[i] + 13;
      char* end = nullptr;
      bool digits = value[0] >= '0' && value[0] <= '9';
      unsigned long long parsed = digits ? std::strtoull(value, &end, 10) : 0;
      if (!digits || *end != '\0' || parsed < 2 || parsed > 100'000'000) {
        std::fprintf(stderr,
                     "verify_repro: bad --mc-samples value '%s' (need an "
                     "integer in [2, 1e8])\n",
                     value);
        return 2;
      }
      options.mc_samples = static_cast<size_t>(parsed);
      continue;
    }
    auto decoded = lec::verify::FuzzCase::Decode(argv[i]);
    if (!decoded) {
      std::fprintf(stderr, "verify_repro: malformed seed '%s'\n", argv[i]);
      return 2;
    }
    cases.push_back(*decoded);
  }
  if (cases.empty()) {
    std::fprintf(stderr,
                 "usage: verify_repro [--mc-samples=N] <seed> [<seed> ...]\n");
    return 2;
  }

  bool any_failed = false;
  for (const lec::verify::FuzzCase& c : cases) {
    std::printf("== replaying %s\n", c.Encode().c_str());
    std::printf("%s", lec::verify::DescribeCase(c).c_str());
    size_t checked = 0;
    std::vector<lec::verify::FuzzViolation> violations =
        lec::verify::CheckCase(c, options, &checked);
    std::printf("   %zu invariants checked, %zu violation(s)\n", checked,
                violations.size());
    for (const lec::verify::FuzzViolation& v : violations) {
      std::printf("   VIOLATION %s\n     %s\n", v.invariant.c_str(),
                  v.detail.c_str());
      any_failed = true;
    }
  }
  return any_failed ? 1 : 0;
}
