// lec_loadgen — socket load generator for the lec_serve wire protocol.
//
// Pre-generates a corpus of seeded workloads, samples requests from it
// with a Zipf-style skew (hot signatures repeat — the traffic shape that
// exercises in-flight coalescing and the PlanCache), and drives them at a
// `lec_serve --listen` instance over N concurrent connections. Reports
// sustained q/s, latency quantiles, and the outcome mix.
//
//   build/lec_loadgen --port=PORT [--host-conns=N] [--requests=N]
//                     [--unique=N] [--zipf=S] [--tables=N] [--shape=NAME]
//                     [--strategy=NAME] [--seed=N] [--budget-ms=MS]
//                     [--binary]
//
//   --port=PORT      server port on 127.0.0.1 (required)
//   --conns=N        concurrent connections, one thread each (default 4)
//   --requests=N     total requests across all connections (default 200)
//   --unique=N       distinct workloads in the corpus (default 16)
//   --zipf=S         skew exponent; 0 = uniform (default 1.1)
//   --tables=N       tables per generated query (default 8)
//   --shape=NAME     chain|star|cycle|clique|random (default chain)
//   --strategy=NAME  strategy for every request (default lec_static)
//   --seed=N         corpus + sampling seed (default 20260807)
//   --budget-ms=MS   per-request deadline budget; 0 = none (default 0)
//   --binary         binary wire encoding (default text)
//
// Exit status: 0 when every request got a response (whatever its serve
// status), 1 on transport failure, 2 on bad flags.
#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <limits>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "query/generator.h"
#include "service/serde.h"
#include "service/wire_server.h"
#include "util/rng.h"
#include "util/wall_timer.h"

namespace {

using lec::Distribution;
using lec::GenerateWorkload;
using lec::JoinGraphShape;
using lec::Rng;
using lec::ServeStatus;
using lec::WireClient;
using lec::WireResponse;
using lec::WorkloadOptions;

struct Flags {
  int port = -1;
  int conns = 4;
  size_t requests = 200;
  size_t unique = 16;
  double zipf = 1.1;
  int tables = 8;
  std::string shape = "chain";
  std::string strategy = "lec_static";
  uint64_t seed = 20260807;
  double budget_ms = 0;
  lec::serde::Encoding encoding = lec::serde::Encoding::kText;
};

std::optional<JoinGraphShape> ParseShape(const std::string& name) {
  if (name == "chain") return JoinGraphShape::kChain;
  if (name == "star") return JoinGraphShape::kStar;
  if (name == "cycle") return JoinGraphShape::kCycle;
  if (name == "clique") return JoinGraphShape::kClique;
  if (name == "random") return JoinGraphShape::kRandom;
  return std::nullopt;
}

std::optional<Flags> ParseFlags(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value = [&](const std::string& prefix) -> std::optional<std::string> {
      if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
      return std::nullopt;
    };
    try {
      if (auto v = value("--port=")) {
        flags.port = std::stoi(*v);
      } else if (auto v = value("--conns=")) {
        flags.conns = std::stoi(*v);
      } else if (auto v = value("--requests=")) {
        flags.requests = std::stoull(*v);
      } else if (auto v = value("--unique=")) {
        flags.unique = std::stoull(*v);
      } else if (auto v = value("--zipf=")) {
        flags.zipf = std::stod(*v);
      } else if (auto v = value("--tables=")) {
        flags.tables = std::stoi(*v);
      } else if (auto v = value("--shape=")) {
        flags.shape = *v;
      } else if (auto v = value("--strategy=")) {
        flags.strategy = *v;
      } else if (auto v = value("--seed=")) {
        flags.seed = std::stoull(*v);
      } else if (auto v = value("--budget-ms=")) {
        flags.budget_ms = std::stod(*v);
      } else if (arg == "--binary") {
        flags.encoding = lec::serde::Encoding::kBinary;
      } else {
        throw std::invalid_argument(arg);
      }
    } catch (const std::exception&) {
      std::fprintf(
          stderr,
          "usage: lec_loadgen --port=PORT [--conns=N] [--requests=N] "
          "[--unique=N] [--zipf=S] [--tables=N] [--shape=NAME] "
          "[--strategy=NAME] [--seed=N] [--budget-ms=MS] [--binary]\n");
      return std::nullopt;
    }
  }
  if (flags.port < 0 || flags.port > 65535 || flags.conns < 1 ||
      flags.unique < 1 || flags.tables < 2 || !ParseShape(flags.shape)) {
    std::fprintf(stderr, "lec_loadgen: bad or missing flags (need --port)\n");
    return std::nullopt;
  }
  return flags;
}

/// Zipf-ish rank weights: weight(rank k) = 1 / (k+1)^s, sampled by CDF
/// inversion. s = 0 degenerates to uniform.
std::vector<double> ZipfCdf(size_t n, double s) {
  std::vector<double> cdf(n);
  double total = 0;
  for (size_t k = 0; k < n; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), s);
    cdf[k] = total;
  }
  for (double& c : cdf) c /= total;
  return cdf;
}

struct WorkerResult {
  std::vector<double> latencies_ms;
  size_t ok = 0, rejected = 0, degraded = 0, coalesced = 0, errors = 0;
  bool transport_failed = false;
};

}  // namespace

int main(int argc, char** argv) {
  std::optional<Flags> flags = ParseFlags(argc, argv);
  if (!flags) return 2;

  // Corpus: `unique` seeded workloads; request i samples a rank from the
  // Zipf CDF. Pre-serialized once — the loadgen must not spend its send
  // loop on serialization.
  std::vector<std::string> payloads;
  payloads.reserve(flags->unique);
  double budget_seconds = flags->budget_ms > 0
                              ? flags->budget_ms * 1e-3
                              : std::numeric_limits<double>::infinity();
  for (size_t u = 0; u < flags->unique; ++u) {
    WorkloadOptions wopts;
    wopts.num_tables = flags->tables;
    wopts.shape = *ParseShape(flags->shape);
    wopts.selectivity_spread = 3.0;
    wopts.table_size_spread = 2.0;
    Rng rng(flags->seed + u);
    lec::serde::ServeRequest request;
    request.strategy = flags->strategy;
    request.workload = GenerateWorkload(wopts, &rng);
    request.memory = Distribution({{64, 0.25}, {512, 0.5}, {4096, 0.25}});
    request.seed = flags->seed + u;
    payloads.push_back(
        lec::EncodeWireRequest(request, budget_seconds, flags->encoding));
  }
  std::vector<double> cdf = ZipfCdf(flags->unique, std::max(flags->zipf, 0.0));

  // Pre-draw every request's corpus rank so the traffic mix is a function
  // of --seed alone, not of how threads interleave.
  std::vector<size_t> picks(flags->requests);
  {
    Rng rng(flags->seed ^ 0x9e3779b97f4a7c15ull);
    for (size_t i = 0; i < picks.size(); ++i) {
      double x = rng.Uniform01();
      picks[i] = static_cast<size_t>(
          std::lower_bound(cdf.begin(), cdf.end(), x) - cdf.begin());
      if (picks[i] >= flags->unique) picks[i] = flags->unique - 1;
    }
  }

  std::atomic<size_t> next{0};
  std::vector<WorkerResult> results(static_cast<size_t>(flags->conns));
  lec::WallTimer wall;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(flags->conns));
  for (int c = 0; c < flags->conns; ++c) {
    threads.emplace_back([&, c] {
      WorkerResult& r = results[static_cast<size_t>(c)];
      try {
        WireClient client(static_cast<uint16_t>(flags->port));
        for (;;) {
          size_t i = next.fetch_add(1);
          if (i >= picks.size()) break;
          lec::WallTimer timer;
          WireResponse resp =
              lec::DecodeWireResponse(client.CallRaw(payloads[picks[i]]));
          r.latencies_ms.push_back(timer.Seconds() * 1e3);
          switch (resp.status) {
            case ServeStatus::kOk:
              ++r.ok;
              if (resp.degraded) ++r.degraded;
              if (resp.coalesced) ++r.coalesced;
              break;
            case ServeStatus::kRejected:
              ++r.rejected;
              break;
            default:
              ++r.errors;
              break;
          }
        }
      } catch (const std::exception& e) {
        std::fprintf(stderr, "lec_loadgen: connection %d: %s\n", c, e.what());
        r.transport_failed = true;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  double elapsed = wall.Seconds();

  WorkerResult total;
  for (const WorkerResult& r : results) {
    total.ok += r.ok;
    total.rejected += r.rejected;
    total.degraded += r.degraded;
    total.coalesced += r.coalesced;
    total.errors += r.errors;
    total.transport_failed |= r.transport_failed;
    total.latencies_ms.insert(total.latencies_ms.end(), r.latencies_ms.begin(),
                              r.latencies_ms.end());
  }
  std::sort(total.latencies_ms.begin(), total.latencies_ms.end());
  auto quantile = [&](double q) {
    if (total.latencies_ms.empty()) return 0.0;
    size_t idx = static_cast<size_t>(
        q * static_cast<double>(total.latencies_ms.size() - 1));
    return total.latencies_ms[idx];
  };

  size_t answered = total.latencies_ms.size();
  std::printf(
      "lec_loadgen: %zu requests over %d conns in %.3f s — %.1f q/s\n"
      "  latency p50 %.3f ms  p90 %.3f ms  p99 %.3f ms  max %.3f ms\n"
      "  ok %zu (degraded %zu, coalesced %zu)  rejected %zu  errors %zu\n",
      answered, flags->conns, elapsed,
      elapsed > 0 ? static_cast<double>(answered) / elapsed : 0.0,
      quantile(0.50), quantile(0.90), quantile(0.99), quantile(1.0), total.ok,
      total.degraded, total.coalesced, total.rejected, total.errors);
  if (total.transport_failed || answered < flags->requests) return 1;
  return 0;
}
