#!/usr/bin/env bash
# Checks every markdown link in the repo's documentation: a relative
# link target (file or directory) must exist on disk. External links
# (http/https/mailto) are not fetched — this gate is about the repo
# staying self-consistent as files move, not about the internet.
#
# Usage: tools/check_markdown_links.sh [file.md ...]
#   With no arguments, checks all *.md at the repo root plus docs/*.md.
# Exit status: 0 when every link resolves, 1 otherwise (each broken
# link is listed).
set -u
cd "$(dirname "$0")/.."

files=("$@")
if [ ${#files[@]} -eq 0 ]; then
  for f in ./*.md docs/*.md; do
    [ -f "$f" ] && files+=("$f")
  done
fi

fail=0
checked=0
for f in "${files[@]}"; do
  dir="$(dirname "$f")"
  # Inline links: [text](target). Targets split from optional titles;
  # angle-bracket wrapping stripped. grep -o keeps multiple links per
  # line separate.
  while IFS= read -r target; do
    # Strip surrounding <...>, a trailing "title", and any #fragment.
    target="${target#<}"
    target="${target%>}"
    target="${target%% \"*}"
    fragment=""
    case "$target" in
      *'#'*) fragment="${target#*#}"; target="${target%%#*}" ;;
    esac
    case "$target" in
      http://*|https://*|mailto:*) continue ;;
      '') continue ;;  # pure in-page anchor like (#section)
    esac
    checked=$((checked + 1))
    if [ ! -e "$dir/$target" ] && [ ! -e "$target" ]; then
      echo "BROKEN $f -> $target${fragment:+#$fragment}"
      fail=1
    fi
  done < <(grep -o '\[[^]]*\]([^)]*)' "$f" 2>/dev/null \
             | sed 's/^\[[^]]*\](//; s/)$//')
done

if [ "$fail" -eq 0 ]; then
  echo "markdown links OK (${checked} relative links across ${#files[@]} files)"
fi
exit "$fail"
