// lec_serve — the plan-cache serving front-end.
//
// Reads a mixed stream of commands and serialized requests from stdin (or
// a file), serves each request from the shared PlanCache when possible,
// optimizes on a miss, and reports per-request outcome plus cache stats.
// The request wire format is service/serde.h's ServeRequest (text or
// binary — the stream is sniffed per request), so anything another process
// serialized can be piped straight in.
//
//   build/lec_serve [--file=REQUESTS] [--snapshot=PATH]
//                   [--cache-entries=N] [--quiet]
//                   [--listen=PORT] [--workers=N] [--queue-capacity=N]
//
//   --file=PATH       read the stream from PATH instead of stdin
//   --snapshot=PATH   warm-load PATH at startup when it exists and save
//                     the cache back to it at clean exit; `save`/`load`
//                     (no argument) use it mid-stream too
//   --cache-entries=N PlanCache capacity (default 4096)
//   --quiet           suppress the per-request detail lines (stats remain)
//   --listen=PORT     also serve the socket wire protocol on
//                     127.0.0.1:PORT (0 picks an ephemeral port, printed
//                     at startup) through an async ServePipeline that
//                     SHARES this process's PlanCache — REPL serves warm
//                     the socket and vice versa. The REPL stays live for
//                     stats/save/load; quit/EOF drains the pipeline and
//                     shuts the socket down cleanly.
//   --workers=N       pipeline compute workers (default 2; --listen only)
//   --queue-capacity=N admission queue bound (default 256; --listen only)
//
// Stream grammar — first word of each element decides:
//
//   lecser ...             one serialized ServeRequest; served
//   gen STRAT SHAPE N SEED [SEL_SPREAD [SIZE_SPREAD]]
//                          generate a seeded workload and serve it, e.g.
//                          `gen lec_static chain 6 42 3`
//   emit STRAT SHAPE N SEED [SEL_SPREAD [SIZE_SPREAD]]
//                          like gen, but print the serialized request
//                          instead of serving (build request files this way)
//   stats                  print cache hit/miss/eviction/stale counters
//   execute STRAT N SEED M0[,M1,...]
//                          generate a seeded chain workload, downscale and
//                          materialize it (exec/plan_executor.h), optimize
//                          it with STRAT — any facade strategy, or
//                          `measured` for the calibrate-fitted backend —
//                          and run the chosen plan through the real storage
//                          operators twice: straight, and adaptively
//                          re-optimizing the tail on drift. Prints the
//                          per-phase traces and both executions' I/O.
//                          M0,M1,... is the per-phase buffer-pool capacity.
//   calibrate SEED [SAMPLES]
//                          replay the operator calibration grid through the
//                          storage engine, fit the measured cost model
//                          (least squares over realized page counts; cap
//                          the corpus at SAMPLES if given), print the
//                          per-operator coefficients and fit error, and
//                          install the model as the `execute measured`
//                          backend.
//   ingest NAME PAGES SEED [KEY_RANGE0 [KEY_RANGE1]]
//                          materialize PAGES pages of synthetic rows
//                          (storage/table_data.h; key range 0 = unique row
//                          ids) and stream them into the named relation's
//                          sketch (src/stats/). Repeating the command
//                          streams MORE rows into the same sketch — that
//                          is data drift.
//   stats-derive NAME      derive a measured size distribution from the
//                          named sketch and install it as an override:
//                          every subsequently served catalog containing a
//                          table of that name (gen names them T0, T1, ...)
//                          gets its pages/pages_dist replaced by the
//                          measurement. Prints the replaced distribution's
//                          ContentHash (feed it to invalidate-dist) and
//                          the new one.
//   invalidate-dist HASH   drop exactly the cached plans that consumed
//                          the distribution with this ContentHash (hex,
//                          as printed by stats-derive); prints the count
//   save [PATH]            snapshot the cache (default: --snapshot path)
//   load [PATH]            warm-load a snapshot (default: --snapshot path)
//   invalidate             epoch-invalidate every cached entry
//   trim                   release the DP scratch retained by this thread
//                          (after an outsized query; reports bytes freed)
//   quit                   exit (EOF also exits)
//   # ...                  comment line (text streams)
//
// Exit status: 0 on success, 1 on a malformed request/command (the stream
// position after a parse error inside a binary request is unrecoverable,
// so lec_serve stops rather than resync).
#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "cost/measured_cost.h"
#include "exec/plan_executor.h"
#include "optimizer/dp_common.h"
#include "optimizer/reoptimize.h"
#include "query/generator.h"
#include "service/plan_cache.h"
#include "service/serde.h"
#include "service/serve_pipeline.h"
#include "service/wire_server.h"
#include "stats/table_stats.h"
#include "storage/buffer_pool.h"
#include "storage/table_data.h"
#include "util/rng.h"
#include "util/wall_timer.h"

namespace {

using lec::Distribution;
using lec::GenerateWorkload;
using lec::JoinGraphShape;
using lec::OptimizeRequest;
using lec::OptimizeResult;
using lec::Optimizer;
using lec::ParseStrategy;
using lec::PlanCache;
using lec::Rng;
using lec::StrategyId;
using lec::WorkloadOptions;

struct Flags {
  std::string file;
  std::string snapshot;
  size_t cache_entries = 4096;
  bool quiet = false;
  int listen_port = -1;  ///< -1 = no socket; 0 = ephemeral
  int workers = 2;
  size_t queue_capacity = 256;
};

std::optional<size_t> ParseNumber(const std::string& v, const char* flag) {
  if (v.empty() || v.find_first_not_of("0123456789") != std::string::npos) {
    std::fprintf(stderr, "lec_serve: %s needs a number\n", flag);
    return std::nullopt;
  }
  try {
    return std::stoull(v);
  } catch (const std::exception&) {
    std::fprintf(stderr, "lec_serve: %s out of range\n", flag);
    return std::nullopt;
  }
}

std::optional<Flags> ParseFlags(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value = [&](const std::string& prefix) -> std::optional<std::string> {
      if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
      return std::nullopt;
    };
    if (auto v = value("--file=")) {
      flags.file = *v;
    } else if (auto v = value("--snapshot=")) {
      flags.snapshot = *v;
    } else if (auto v = value("--cache-entries=")) {
      if (v->empty() ||
          v->find_first_not_of("0123456789") != std::string::npos) {
        std::fprintf(stderr, "lec_serve: --cache-entries needs a number\n");
        return std::nullopt;
      }
      try {
        flags.cache_entries = std::stoull(*v);
      } catch (const std::exception&) {
        std::fprintf(stderr, "lec_serve: --cache-entries out of range\n");
        return std::nullopt;
      }
    } else if (arg == "--quiet") {
      flags.quiet = true;
    } else if (auto v = value("--listen=")) {
      auto port = ParseNumber(*v, "--listen");
      if (!port || *port > 65535) {
        std::fprintf(stderr, "lec_serve: --listen needs a port (0-65535)\n");
        return std::nullopt;
      }
      flags.listen_port = static_cast<int>(*port);
    } else if (auto v = value("--workers=")) {
      auto n = ParseNumber(*v, "--workers");
      if (!n || *n < 1) return std::nullopt;
      flags.workers = static_cast<int>(*n);
    } else if (auto v = value("--queue-capacity=")) {
      auto n = ParseNumber(*v, "--queue-capacity");
      if (!n || *n < 1) return std::nullopt;
      flags.queue_capacity = *n;
    } else {
      std::fprintf(stderr,
                   "usage: lec_serve [--file=REQUESTS] [--snapshot=PATH] "
                   "[--cache-entries=N] [--quiet] [--listen=PORT] "
                   "[--workers=N] [--queue-capacity=N]\n");
      return std::nullopt;
    }
  }
  return flags;
}

std::optional<JoinGraphShape> ParseShape(const std::string& name) {
  if (name == "chain") return JoinGraphShape::kChain;
  if (name == "star") return JoinGraphShape::kStar;
  if (name == "cycle") return JoinGraphShape::kCycle;
  if (name == "clique") return JoinGraphShape::kClique;
  if (name == "random") return JoinGraphShape::kRandom;
  return std::nullopt;
}

/// The seeded demo environment `gen`/`emit` build: a workload plus the
/// Example-1.1-flavored three-point memory distribution. `args` is the
/// remainder of the command's own line, so optional trailing spreads can
/// never swallow the next command.
std::optional<lec::serde::ServeRequest> BuildGenRequest(
    const std::string& args) {
  std::istringstream in(args);
  std::string strategy, shape_name;
  int num_tables = 0;
  uint64_t seed = 0;
  if (!(in >> strategy >> shape_name >> num_tables >> seed)) return {};
  double sel_spread = 1.0, size_spread = 1.0;
  in >> sel_spread;
  in >> size_spread;
  if (!ParseStrategy(strategy) || !ParseShape(shape_name) || num_tables < 2) {
    return {};
  }
  WorkloadOptions wopts;
  wopts.num_tables = num_tables;
  wopts.shape = *ParseShape(shape_name);
  wopts.selectivity_spread = sel_spread;
  wopts.table_size_spread = size_spread;
  Rng rng(seed);
  lec::serde::ServeRequest request;
  request.strategy = strategy;
  request.workload = GenerateWorkload(wopts, &rng);
  request.memory = Distribution({{64, 0.25}, {512, 0.5}, {4096, 0.25}});
  request.seed = seed;
  return request;
}

class Server {
 public:
  explicit Server(const Flags& flags)
      : flags_(flags), cache_(MakeCacheOptions(flags)) {}

  PlanCache& cache() { return cache_; }
  const lec::CostModel& model() const { return model_; }

  /// Serves one deserialized request; prints outcome unless --quiet.
  bool Serve(const lec::serde::ServeRequest& request) {
    StrategyId id = *ParseStrategy(request.strategy);
    OptimizeRequest req;
    req.query = &request.workload.query;
    req.catalog = &request.workload.catalog;
    // Measured-statistics overrides (stats-derive): serve against a
    // patched catalog copy so the cached plan consumes — and is keyed by —
    // the measured distributions.
    std::optional<lec::Catalog> patched =
        ApplyMeasuredOverrides(request.workload.catalog);
    if (patched) req.catalog = &*patched;
    req.model = &model_;
    req.memory = &request.memory;
    req.options = request.options;
    req.options.plan_cache = &cache_;
    req.lsc_estimate = request.lsc_estimate;
    req.top_c = request.top_c;
    if (request.chain) req.chain = &*request.chain;
    req.seed = request.seed;
    req.randomized_restarts = request.randomized_restarts;
    req.randomized_patience = request.randomized_patience;
    req.sample_predicate = request.sample_predicate;

    size_t hits_before = cache_.stats().hits;
    lec::WallTimer timer;
    OptimizeResult result;
    try {
      result = optimizer_.Optimize(id, req);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "lec_serve: optimize failed: %s\n", e.what());
      return false;
    }
    double seconds = timer.Seconds();
    ++served_;
    bool hit = cache_.stats().hits > hits_before;
    if (!flags_.quiet) {
      std::printf("#%zu %s n=%d %s objective=%.17g %.1f us\n", served_,
                  request.strategy.c_str(),
                  request.workload.query.num_tables(),
                  hit ? "HIT " : "MISS", result.objective, seconds * 1e6);
    }
    return true;
  }

  void PrintStats() const {
    PlanCache::Stats s = cache_.stats();
    std::printf(
        "cache: %zu entries (cap %zu) | hits %zu misses %zu hit-rate %.1f%% "
        "| insertions %zu evictions %zu stale %zu\n",
        cache_.size(), cache_.max_entries(), s.hits, s.misses,
        s.lookups() > 0 ? 100.0 * static_cast<double>(s.hits) /
                              static_cast<double>(s.lookups())
                        : 0.0,
        s.insertions, s.evictions, s.stale);
  }

  size_t served() const { return served_; }

  /// `ingest NAME PAGES SEED [KEY_RANGE0 [KEY_RANGE1]]`: materialize and
  /// stream synthetic rows into the named sketch, charging buffer-pool
  /// reads like any scan. Re-ingesting the same name accumulates (drift).
  bool Ingest(const std::string& args) {
    std::istringstream in(args);
    std::string name;
    size_t pages = 0;
    uint64_t seed = 0;
    if (!(in >> name >> pages >> seed) || pages == 0) {
      std::fprintf(stderr,
                   "lec_serve: usage: ingest NAME PAGES SEED "
                   "[KEY_RANGE0 [KEY_RANGE1]]\n");
      return false;
    }
    int64_t key_range0 = 0, key_range1 = 0;
    in >> key_range0;
    in >> key_range1;
    Rng rng(seed);
    lec::TableData data =
        lec::GenerateTable(pages, key_range0, key_range1, &rng);
    lec::BufferPool pool(1);
    lec::stats::TableSketch& sketch = sketches_[name];
    sketch.IngestTable(data, &pool);
    std::printf(
        "ingested %s: %zu pages, %" PRIu64 " rows (%" PRIu64
        " page reads charged); sketch now %" PRIu64 " rows, ~%.0f distinct\n",
        name.c_str(), data.num_pages(),
        static_cast<uint64_t>(data.num_tuples()), pool.reads(), sketch.rows(),
        sketch.row_distinct().Estimate());
    return true;
  }

  /// `stats-derive NAME`: turn the named sketch into a measured size
  /// distribution and install it as a serving override. Prints the
  /// replaced distribution's ContentHash — the input to invalidate-dist.
  bool DeriveStats(const std::string& args) {
    std::istringstream in(args);
    std::string name;
    if (!(in >> name)) {
      std::fprintf(stderr, "lec_serve: usage: stats-derive NAME\n");
      return false;
    }
    auto it = sketches_.find(name);
    if (it == sketches_.end()) {
      std::fprintf(stderr,
                   "lec_serve: no sketch for \"%s\" (run ingest first)\n",
                   name.c_str());
      return false;
    }
    Distribution dist = lec::stats::DeriveSizeDistribution(it->second);
    double pages = lec::stats::MeasuredPages(it->second);
    auto prev = measured_.find(name);
    if (prev == measured_.end()) {
      std::printf("%s: measured %.3f pages, dist %016" PRIx64 "\n",
                  name.c_str(), pages, dist.ContentHash());
    } else if (prev->second.dist.ContentHash() == dist.ContentHash()) {
      std::printf("%s: measured %.3f pages, dist %016" PRIx64 " (unchanged)\n",
                  name.c_str(), pages, dist.ContentHash());
    } else {
      // Drift: the old measurement is now stale — tell the operator which
      // hash to invalidate so only its consumers are dropped.
      std::printf("%s: measured %.3f pages, dist %016" PRIx64
                  " replaces stale %016" PRIx64 "\n",
                  name.c_str(), pages, dist.ContentHash(),
                  prev->second.dist.ContentHash());
    }
    measured_[name] = MeasuredSize{pages, std::move(dist)};
    return true;
  }

  /// `invalidate-dist HASH`: precise invalidation by distribution
  /// ContentHash (hex, with or without a 0x prefix — the format
  /// stats-derive prints).
  bool InvalidateDist(const std::string& args) {
    std::istringstream in(args);
    std::string token;
    if (!(in >> token)) {
      std::fprintf(stderr, "lec_serve: usage: invalidate-dist HASH\n");
      return false;
    }
    uint64_t hash = 0;
    try {
      size_t used = 0;
      hash = std::stoull(token, &used, 16);
      if (used != token.size()) throw std::invalid_argument(token);
    } catch (const std::exception&) {
      std::fprintf(stderr, "lec_serve: invalidate-dist: bad hash \"%s\"\n",
                   token.c_str());
      return false;
    }
    size_t dropped = cache_.InvalidateDistribution(hash);
    std::printf("invalidate-dist %016" PRIx64 ": dropped %zu entr%s\n", hash,
                dropped, dropped == 1 ? "y" : "ies");
    return true;
  }

  /// `calibrate SEED [SAMPLES]`: replay the calibration grid through the
  /// storage operators, fit the measured model, install it for
  /// `execute measured`.
  bool Calibrate(const std::string& args) {
    std::istringstream in(args);
    uint64_t seed = 0;
    if (!(in >> seed)) {
      std::fprintf(stderr, "lec_serve: usage: calibrate SEED [SAMPLES]\n");
      return false;
    }
    size_t samples = 0;
    in >> samples;
    Rng rng(seed);
    lec::CalibrationGrid grid;
    std::vector<lec::OperatorSample> corpus =
        lec::BuildCalibrationCorpus(grid, &rng);
    if (samples > 0 && samples < corpus.size()) corpus.resize(samples);
    lec::MeasuredCostModel fitted(model_);
    fitted.Fit(corpus);
    double before = lec::MeasuredCostModel(model_).MeanAbsRelativeError(corpus);
    double after = fitted.MeanAbsRelativeError(corpus);
    for (lec::JoinMethod m : lec::kAllJoinMethods) {
      const lec::MeasuredCoefficients& c = fitted.join_coefficients(m);
      std::printf("  %-11s alpha=%.4f beta=%.4f gamma=%+.2f (%zu samples)\n",
                  lec::ToString(m).c_str(), c.alpha, c.beta, c.gamma,
                  c.samples);
    }
    const lec::MeasuredCoefficients& s = fitted.sort_coefficients();
    std::printf("  %-11s alpha=%.4f beta=%.4f gamma=%+.2f (%zu samples)\n",
                "sort", s.alpha, s.beta, s.gamma, s.samples);
    std::printf(
        "calibrated on %zu operator runs: mean abs rel error %.4f -> %.4f\n",
        corpus.size(), before, after);
    measured_model_ = std::move(fitted);
    return true;
  }

  /// `execute STRAT N SEED M0[,M1,...]`: optimize a downscaled seeded chain
  /// and run the plan through the real operators, straight and adaptive.
  bool Execute(const std::string& args) {
    std::istringstream in(args);
    std::string strategy, mems_token;
    int n = 0;
    uint64_t seed = 0;
    if (!(in >> strategy >> n >> seed >> mems_token) || n < 2) {
      std::fprintf(stderr,
                   "lec_serve: usage: execute STRAT N SEED M0[,M1,...]\n");
      return false;
    }
    std::vector<double> mems;
    std::istringstream ms(mems_token);
    std::string piece;
    while (std::getline(ms, piece, ',')) {
      try {
        mems.push_back(std::stod(piece));
      } catch (const std::exception&) {
        mems.clear();
        break;
      }
      if (mems.back() < 1) {
        mems.clear();
        break;
      }
    }
    if (mems.empty()) {
      std::fprintf(stderr,
                   "lec_serve: execute: memories must be numbers >= 1\n");
      return false;
    }
    bool measured = strategy == "measured";
    if (measured && !measured_model_) {
      std::fprintf(stderr,
                   "lec_serve: execute measured needs `calibrate` first\n");
      return false;
    }
    if (!measured && !ParseStrategy(strategy)) {
      std::fprintf(stderr, "lec_serve: unknown strategy \"%s\"\n",
                   strategy.c_str());
      return false;
    }

    // Downscale the seeded chain to materializable size: catalog pages map
    // to ~log2(pages) and selectivities re-draw high enough to produce
    // matches at this scale (the fuzz I12 idiom).
    Rng rng(seed);
    WorkloadOptions wopts;
    wopts.num_tables = n;
    wopts.shape = JoinGraphShape::kChain;
    lec::Workload base = GenerateWorkload(wopts, &rng);
    lec::Catalog catalog;
    lec::Query query;
    for (lec::QueryPos p = 0; p < n; ++p) {
      double orig = base.catalog.table(base.query.table(p)).pages;
      double pages =
          std::clamp(std::round(std::log2(orig + 1.0)), 3.0, 12.0);
      query.AddTable(catalog.AddTable("x" + std::to_string(p), pages));
    }
    for (int i = 0; i + 1 < n; ++i) {
      query.AddPredicate(i, i + 1, rng.LogUniform(1e-2, 0.05));
    }
    lec::EngineWorkload data =
        lec::BuildChainEngineWorkload(query, catalog, &rng);

    OptimizeResult plan;
    if (measured) {
      plan = lec::OptimizeWithMeasuredModel(query, catalog, *measured_model_,
                                            mems[0]);
    } else {
      Distribution memory = Distribution::PointMass(mems[0]);
      OptimizeRequest req;
      req.query = &query;
      req.catalog = &catalog;
      req.model = &model_;
      req.memory = &memory;
      req.seed = seed;
      plan = optimizer_.Optimize(*ParseStrategy(strategy), req);
    }

    lec::ExecutePlanOptions straight;
    straight.memory_by_phase = mems;
    lec::ExecutionResult run = lec::ExecutePlan(plan.plan, query, data,
                                                straight);
    lec::ExecutePlanOptions adaptive = straight;
    adaptive.reoptimize_on_drift = true;
    adaptive.model = &model_;
    lec::ExecutionResult rerun = lec::ExecutePlan(plan.plan, query, data,
                                                  adaptive);

    std::printf("execute %s n=%d seed=%" PRIu64 ": objective=%.6g\n",
                strategy.c_str(), n, seed, plan.objective);
    for (const lec::PhaseTrace& t : run.phases) {
      std::printf("  phase %d: %-10s %gx%g -> planned %.3g realized %g "
                  "pages, io %" PRIu64 "+%" PRIu64 ", M=%g%s\n",
                  t.phase,
                  t.is_sort ? "sort" : lec::ToString(t.method).c_str(),
                  t.left_pages, t.right_pages, t.planned_output_pages,
                  t.realized_output_pages, t.page_reads, t.page_writes,
                  t.memory, t.drifted ? " [drift]" : "");
    }
    auto multiset = [](const lec::TableData& t) {
      std::vector<int64_t> out;
      out.reserve(t.num_tuples());
      t.ForEachTuple(
          [&](const lec::Tuple& tup) { out.push_back(tup.payload); });
      std::sort(out.begin(), out.end());
      return out;
    };
    bool same = multiset(run.result) == multiset(rerun.result);
    std::printf("  straight: io %" PRIu64 " (%" PRIu64 " reads, %" PRIu64
                " writes), %zu tuples\n",
                run.total_io(), run.page_reads, run.page_writes,
                run.result_tuples());
    std::printf("  adaptive: io %" PRIu64 ", %d reoptimization(s), %zu "
                "tuples, answers %s\n",
                rerun.total_io(), rerun.reoptimizations,
                rerun.result_tuples(), same ? "match" : "DIVERGE");
    return same;
  }

 private:
  struct MeasuredSize {
    double pages = 0;
    Distribution dist = Distribution::PointMass(1.0);
  };

  static PlanCache::Options MakeCacheOptions(const Flags& flags) {
    PlanCache::Options copts;
    copts.max_entries = flags.cache_entries;
    return copts;
  }

  /// Applies every stats-derive override whose name matches a table in
  /// `base`; returns the patched copy, or nullopt when nothing matched.
  std::optional<lec::Catalog> ApplyMeasuredOverrides(
      const lec::Catalog& base) const {
    std::optional<lec::Catalog> patched;
    for (const auto& [name, m] : measured_) {
      lec::TableId id;
      try {
        id = base.FindByName(name);
      } catch (const std::out_of_range&) {
        continue;
      }
      if (!patched) patched = base;
      patched->UpdateTableStats(id, m.pages, m.dist);
    }
    return patched;
  }

  Flags flags_;
  lec::CostModel model_;
  Optimizer optimizer_;
  PlanCache cache_;
  size_t served_ = 0;
  /// Measured-statistics state, keyed by relation name.
  std::map<std::string, lec::stats::TableSketch> sketches_;
  std::map<std::string, MeasuredSize> measured_;
  /// The `calibrate`-fitted second cost backend (`execute measured`).
  std::optional<lec::MeasuredCostModel> measured_model_;
};

int Run(std::istream& in, const Flags& flags) {
  Server server(flags);

  // --listen: an async pipeline + socket front end sharing the REPL's
  // PlanCache. Constructed before the snapshot warm-load so remote
  // requests arriving mid-load just miss and compute.
  std::optional<lec::ServePipeline> pipeline;
  std::optional<lec::WireServer> wire;
  if (flags.listen_port >= 0) {
    lec::ServePipeline::Options popts;
    popts.workers = flags.workers;
    popts.queue_capacity = flags.queue_capacity;
    popts.plan_cache = &server.cache();
    popts.model = &server.model();
    pipeline.emplace(std::move(popts));
    lec::WireServer::Options wopts;
    wopts.port = static_cast<uint16_t>(flags.listen_port);
    try {
      wire.emplace(&*pipeline, wopts);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "lec_serve: %s\n", e.what());
      return 2;
    }
    std::printf("listening on 127.0.0.1:%u (workers=%d queue=%zu)\n",
                wire->port(), flags.workers, flags.queue_capacity);
    std::fflush(stdout);
  }

  if (!flags.snapshot.empty()) {
    std::ifstream probe(flags.snapshot);
    if (probe.good()) {
      probe.close();
      size_t loaded = server.cache().LoadSnapshotFile(flags.snapshot);
      std::printf("warm-loaded %zu entries from %s\n", loaded,
                  flags.snapshot.c_str());
    }
  }

  std::string word;
  while (in >> word) {
    try {
      if (word == "lecser") {
        // A serialized request: the magic word is consumed, the Reader
        // picks up at the encoding word.
        lec::serde::Reader reader(in, lec::serde::Reader::kHeaderConsumed);
        lec::serde::ServeRequest request = lec::serde::ReadServeRequest(reader);
        if (!server.Serve(request)) return 1;
      } else if (word == "gen" || word == "emit") {
        std::string rest;
        std::getline(in, rest);
        std::optional<lec::serde::ServeRequest> request = BuildGenRequest(rest);
        if (!request) {
          std::fprintf(stderr,
                       "lec_serve: usage: %s STRAT SHAPE N SEED "
                       "[SEL_SPREAD [SIZE_SPREAD]]\n",
                       word.c_str());
          return 1;
        }
        if (word == "emit") {
          std::printf("%s\n", lec::serde::ToString(*request).c_str());
        } else if (!server.Serve(*request)) {
          return 1;
        }
      } else if (word == "stats") {
        server.PrintStats();
        if (pipeline) {
          lec::ServePipeline::Stats p = pipeline->stats();
          lec::WireServer::Stats ws = wire->stats();
          std::printf(
              "pipeline: submitted %zu served %zu computed %zu coalesced %zu "
              "rejected %zu degraded %zu errors %zu queue-hwm %zu | wire: "
              "%zu conns %zu reqs %zu protocol-errors\n",
              p.submitted, p.served, p.computed, p.coalesced, p.rejected,
              p.degraded, p.errors, p.queue_depth_hwm, ws.connections,
              ws.requests, ws.protocol_errors);
        }
      } else if (word == "save" || word == "load") {
        // Line-delimited: an argument lives on the command's own line, so
        // a bare `save` can never swallow the next command as its path.
        std::string rest, path;
        std::getline(in, rest);
        std::istringstream(rest) >> path;
        if (path.empty()) path = flags.snapshot;
        if (path.empty()) {
          std::fprintf(stderr,
                       "lec_serve: %s needs a path (or --snapshot=)\n",
                       word.c_str());
          return 1;
        }
        if (word == "save") {
          size_t saved = server.cache().SaveSnapshotFile(path);
          std::printf("saved %zu entries to %s\n", saved, path.c_str());
        } else {
          size_t loaded = server.cache().LoadSnapshotFile(path);
          std::printf("loaded %zu entries from %s\n", loaded, path.c_str());
        }
      } else if (word == "ingest") {
        std::string rest;
        std::getline(in, rest);
        if (!server.Ingest(rest)) return 1;
      } else if (word == "execute") {
        std::string rest;
        std::getline(in, rest);
        if (!server.Execute(rest)) return 1;
      } else if (word == "calibrate") {
        std::string rest;
        std::getline(in, rest);
        if (!server.Calibrate(rest)) return 1;
      } else if (word == "stats-derive") {
        std::string rest;
        std::getline(in, rest);
        if (!server.DeriveStats(rest)) return 1;
      } else if (word == "invalidate-dist") {
        std::string rest;
        std::getline(in, rest);
        if (!server.InvalidateDist(rest)) return 1;
      } else if (word == "invalidate") {
        size_t before = server.cache().size();
        server.cache().InvalidateAll();
        std::printf("invalidated (%zu stale entries swept)\n",
                    before - server.cache().size());
      } else if (word == "trim") {
        // The DP scratch is sized by the largest query a thread has seen
        // (optimizer/dp_common.h); this releases the REPL thread's scratch
        // (pipeline workers under --listen keep theirs until shutdown).
        // The next optimize re-warms.
        std::printf("trimmed %zu bytes of DP scratch\n",
                    lec::ReleaseThreadLocalDpScratch());
      } else if (word == "quit") {
        break;
      } else if (!word.empty() && word[0] == '#') {
        std::string rest;
        std::getline(in, rest);  // comment: swallow to end of line
      } else {
        std::fprintf(stderr, "lec_serve: unknown command \"%s\"\n",
                     word.c_str());
        return 1;
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "lec_serve: %s\n", e.what());
      return 1;
    }
  }

  // Socket teardown before the snapshot save: stop accepting, drain every
  // admitted job, THEN snapshot — so the saved cache includes everything
  // the pipeline served.
  if (wire) {
    wire->Stop();
    pipeline->Shutdown();
    if (!flags.quiet) {
      lec::ServePipeline::Stats p = pipeline->stats();
      std::printf("pipeline drained: served %zu computed %zu coalesced %zu\n",
                  p.served, p.computed, p.coalesced);
    }
  }

  // --snapshot is symmetric: warm-loaded at startup, saved back at clean
  // exit — a restart cycle needs no explicit save/load commands.
  if (!flags.snapshot.empty()) {
    size_t saved = server.cache().SaveSnapshotFile(flags.snapshot);
    if (!flags.quiet) {
      std::printf("saved %zu entries to %s\n", saved, flags.snapshot.c_str());
    }
  }
  // The parting stats line is suppressed under --quiet so that
  // `lec_serve --quiet` output is exactly what the stream asked for —
  // the documented `emit ... > requests.lec` pipe depends on it. An
  // explicit `stats` command still prints.
  if (!flags.quiet) server.PrintStats();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::optional<Flags> flags = ParseFlags(argc, argv);
  if (!flags) return 2;
  if (!flags->file.empty()) {
    std::ifstream in(flags->file, std::ios::binary);
    if (!in.good()) {
      std::fprintf(stderr, "lec_serve: cannot open %s\n",
                   flags->file.c_str());
      return 2;
    }
    return Run(in, *flags);
  }
  return Run(std::cin, *flags);
}
