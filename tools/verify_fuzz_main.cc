// verify_fuzz — the metamorphic fuzz driver as a standalone binary.
//
//   verify_fuzz [--rounds=N] [--seed=S] [--no-mc] [--mc-samples=N]
//               [--out=FILE]
//
// Runs N fuzz rounds (src/verify/fuzz_driver.h) and prints a summary. On
// any invariant violation the encoded counterexample seeds are printed and
// appended to --out (default: verify_counterexamples.txt) so CI can upload
// them as artifacts, and the exit status is 1. Replay one with
// `verify_repro <seed>`.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <set>
#include <string>

#include "verify/fuzz_driver.h"

namespace {

bool ParseFlag(const char* arg, const char* name, const char** value) {
  size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0) return false;
  if (arg[len] != '=') return false;
  *value = arg + len + 1;
  return true;
}

/// Full-consumption numeric parse: "20260729extra" and "abc" are usage
/// errors, not silently prefix-parsed campaigns of a different world (the
/// same contract FuzzCase::Decode applies to seed fields). Digits only:
/// strtoull accepts a leading '-' and wraps, so "-1" would otherwise pass
/// as 2^64-1.
bool ParseUint64(const char* text, uint64_t* out) {
  if (text[0] < '0' || text[0] > '9') return false;
  char* end = nullptr;
  *out = std::strtoull(text, &end, 10);
  return *end == '\0';
}

}  // namespace

int main(int argc, char** argv) {
  lec::verify::FuzzOptions options;
  options.rounds = 100;
  std::string out_path = "verify_counterexamples.txt";
  for (int i = 1; i < argc; ++i) {
    const char* value = nullptr;
    uint64_t number = 0;
    if (ParseFlag(argv[i], "--rounds", &value)) {
      if (!ParseUint64(value, &number) || number > 1'000'000) {
        std::fprintf(stderr, "verify_fuzz: bad --rounds value '%s'\n", value);
        return 2;
      }
      options.rounds = static_cast<int>(number);
    } else if (ParseFlag(argv[i], "--seed", &value)) {
      if (!ParseUint64(value, &number)) {
        std::fprintf(stderr, "verify_fuzz: bad --seed value '%s'\n", value);
        return 2;
      }
      options.base_seed = number;
    } else if (ParseFlag(argv[i], "--mc-samples", &value)) {
      if (!ParseUint64(value, &number) || number > 100'000'000) {
        std::fprintf(stderr, "verify_fuzz: bad --mc-samples value '%s'\n",
                     value);
        return 2;
      }
      options.mc_samples = static_cast<size_t>(number);
    } else if (ParseFlag(argv[i], "--out", &value)) {
      out_path = value;
    } else if (std::strcmp(argv[i], "--no-mc") == 0) {
      options.check_mc = false;
    } else {
      std::fprintf(stderr,
                   "usage: verify_fuzz [--rounds=N] [--seed=S] [--no-mc] "
                   "[--mc-samples=N] [--out=FILE]\n");
      return 2;
    }
  }
  if (options.rounds <= 0) {
    std::fprintf(stderr, "verify_fuzz: --rounds must be positive\n");
    return 2;
  }
  if (options.mc_samples < 2) {
    // The MC validator needs >= 2 samples for a variance estimate; catch
    // it here as a usage error instead of an uncaught throw mid-campaign.
    std::fprintf(stderr, "verify_fuzz: --mc-samples must be >= 2\n");
    return 2;
  }

  std::printf("verify_fuzz: %d rounds from seed %llu (mc %s)\n",
              options.rounds,
              static_cast<unsigned long long>(options.base_seed),
              options.check_mc ? "on" : "off");
  lec::verify::FuzzReport report = lec::verify::RunFuzz(options);
  std::printf("rounds run:         %d\n", report.rounds_run);
  std::printf("invariants checked: %zu\n", report.invariants_checked);
  std::printf("violations:         %zu\n", report.violations.size());
  if (report.violations.empty()) return 0;

  std::set<std::string> seeds;
  for (const lec::verify::FuzzViolation& v : report.violations) {
    std::string seed = v.fuzz_case.Encode();
    std::printf("VIOLATION %s  case %s\n  %s\n", v.invariant.c_str(),
                seed.c_str(), v.detail.c_str());
    seeds.insert(seed);
  }
  std::ofstream out(out_path, std::ios::app);
  for (const std::string& seed : seeds) out << seed << "\n";
  out.flush();
  if (out.good()) {
    std::printf("wrote %zu counterexample seed(s) to %s; replay with "
                "verify_repro <seed>\n",
                seeds.size(), out_path.c_str());
  } else {
    // The seeds are the whole point of a failing campaign — losing them
    // silently (unwritable path, full disk) must not look like success.
    std::fprintf(stderr,
                 "verify_fuzz: FAILED to write counterexample seeds to %s; "
                 "copy them from the log above\n",
                 out_path.c_str());
  }
  return 1;
}
