// Monte-Carlo ground-truthing: CLT intervals must cover the analytic EC in
// every regime where the analytic computation is exact, the exact joint
// enumeration must agree with the cheaper evaluators where they coincide,
// and the engine replay must be deterministic and sane.
#include "verify/mc_validator.h"

#include <gtest/gtest.h>

#include "dist/builders.h"
#include "optimizer/algorithm_c.h"
#include "optimizer/system_r.h"
#include "query/generator.h"
#include "verify/tolerance.h"

namespace lec::verify {
namespace {

Workload MakeWorkload(uint64_t seed, int tables, JoinGraphShape shape,
                      double sel_spread = 1.0, double size_spread = 1.0) {
  Rng rng(seed);
  WorkloadOptions wopts;
  wopts.num_tables = tables;
  wopts.shape = shape;
  wopts.selectivity_spread = sel_spread;
  wopts.table_size_spread = size_spread;
  wopts.order_by_probability = 0.5;
  return GenerateWorkload(wopts, &rng);
}

TEST(ZForConfidenceTest, KnownQuantilesAndRejection) {
  EXPECT_NEAR(ZForConfidence(0.95), 1.96, 1e-3);
  EXPECT_NEAR(ZForConfidence(0.99), 2.5758, 1e-3);
  EXPECT_GT(ZForConfidence(0.999), ZForConfidence(0.99));
  EXPECT_THROW(ZForConfidence(0.5), std::invalid_argument);
  EXPECT_THROW(ZForConfidence(1.0), std::invalid_argument);
}

TEST(McValidatorTest, StaticCiCoversAnalyticEc) {
  CostModel model;
  Distribution memory = UniformBuckets(50, 2000, 4);
  for (uint64_t seed : {1u, 2u, 3u, 4u}) {
    Workload w = MakeWorkload(seed, 4, JoinGraphShape::kChain);
    PlanPtr plan = OptimizeLecStatic(w.query, w.catalog, model, memory).plan;
    McOptions mc;
    mc.samples = 3000;
    mc.seed = 100 + seed;
    CiResult ci = ValidatePlanEc(plan, w.query, w.catalog, model, memory, mc);
    EXPECT_TRUE(ci.Covers())
        << "seed " << seed << ": analytic " << ci.analytic_ec << " outside ["
        << ci.ci_lo() << ", " << ci.ci_hi() << "]";
    EXPECT_EQ(ci.samples, 3000u);
    EXPECT_DOUBLE_EQ(ci.confidence, 0.99);
    EXPECT_GT(ci.analytic_ec, 0);
  }
}

TEST(McValidatorTest, DynamicCiCoversAnalyticEc) {
  CostModel model;
  Distribution memory({{80, 0.5}, {900, 0.5}});
  MarkovChain chain = MarkovChain::Drift({80, 900}, 0.6);
  for (uint64_t seed : {5u, 6u, 7u}) {
    Workload w = MakeWorkload(seed, 4, JoinGraphShape::kStar);
    PlanPtr plan = OptimizeLecStatic(w.query, w.catalog, model, memory).plan;
    McOptions mc;
    mc.samples = 3000;
    mc.seed = 200 + seed;
    mc.chain = &chain;
    CiResult ci = ValidatePlanEc(plan, w.query, w.catalog, model, memory, mc);
    EXPECT_TRUE(ci.Covers())
        << "seed " << seed << ": analytic " << ci.analytic_ec << " outside ["
        << ci.ci_lo() << ", " << ci.ci_hi() << "]";
  }
}

TEST(McValidatorTest, MultiParamCiCoversExactJointEc) {
  CostModel model;
  Distribution memory({{60, 0.4}, {700, 0.6}});
  Workload w = MakeWorkload(8, 3, JoinGraphShape::kChain, 3.0, 2.0);
  PlanPtr plan = OptimizeLecStatic(w.query, w.catalog, model, memory).plan;
  McOptions mc;
  mc.samples = 4000;
  mc.seed = 300;
  mc.sample_data_parameters = true;
  CiResult ci = ValidatePlanEc(plan, w.query, w.catalog, model, memory, mc);
  EXPECT_TRUE(ci.Covers())
      << "analytic " << ci.analytic_ec << " outside [" << ci.ci_lo() << ", "
      << ci.ci_hi() << "]";
  // The reference really is the joint enumeration.
  EXPECT_DOUBLE_EQ(ci.analytic_ec,
                   ExactMultiParamEc(plan, w.query, w.catalog, model,
                                     memory));
}

TEST(McValidatorTest, RejectsDynamicPlusDataSampling) {
  CostModel model;
  Distribution memory({{80, 0.5}, {900, 0.5}});
  MarkovChain chain = MarkovChain::Drift({80, 900}, 0.6);
  Workload w = MakeWorkload(9, 3, JoinGraphShape::kChain);
  PlanPtr plan = OptimizeLsc(w.query, w.catalog, model, 80).plan;
  McOptions mc;
  mc.chain = &chain;
  mc.sample_data_parameters = true;
  EXPECT_THROW(ValidatePlanEc(plan, w.query, w.catalog, model, memory, mc),
               std::invalid_argument);
  McOptions too_few;
  too_few.samples = 1;
  EXPECT_THROW(
      ValidatePlanEc(plan, w.query, w.catalog, model, memory, too_few),
      std::invalid_argument);
}

TEST(McValidatorTest, PointMassEnvironmentIsExact) {
  CostModel model;
  Distribution memory = Distribution::PointMass(500);
  Workload w = MakeWorkload(10, 4, JoinGraphShape::kCycle);
  PlanPtr plan = OptimizeLsc(w.query, w.catalog, model, 500).plan;
  McOptions mc;
  mc.samples = 50;
  CiResult ci = ValidatePlanEc(plan, w.query, w.catalog, model, memory, mc);
  EXPECT_DOUBLE_EQ(ci.sample_stddev, 0.0);
  EXPECT_DOUBLE_EQ(ci.half_width, 0.0);
  EXPECT_DOUBLE_EQ(ci.empirical_mean, ci.analytic_ec);
  EXPECT_TRUE(ci.Covers());
}

TEST(McValidatorTest, DeterministicGivenSeedAndTighterWithMoreSamples) {
  CostModel model;
  Distribution memory = UniformBuckets(5, 5000, 6);
  Workload w = MakeWorkload(11, 4, JoinGraphShape::kChain);
  // The LSC plan, not the LEC one: the LEC optimum often hedges into a
  // memory-flat plan (zero cost variance), which would make the interval
  // degenerate; a point-estimate plan straddles cost regimes.
  PlanPtr plan = OptimizeLsc(w.query, w.catalog, model, memory.Mean()).plan;
  McOptions mc;
  mc.samples = 1000;
  mc.seed = 42;
  CiResult a = ValidatePlanEc(plan, w.query, w.catalog, model, memory, mc);
  CiResult b = ValidatePlanEc(plan, w.query, w.catalog, model, memory, mc);
  ASSERT_GT(a.half_width, 0.0);
  EXPECT_DOUBLE_EQ(a.empirical_mean, b.empirical_mean);
  EXPECT_DOUBLE_EQ(a.half_width, b.half_width);
  // 16x the samples shrinks the interval roughly 4x; allow slack for the
  // sample-stddev estimate moving.
  mc.samples = 16000;
  CiResult big = ValidatePlanEc(plan, w.query, w.catalog, model, memory, mc);
  EXPECT_LT(big.half_width, 0.5 * a.half_width);
}

TEST(McValidatorTest, ExactJointEcReducesToStaticWhenDataIsCertain) {
  CostModel model;
  Distribution memory = UniformBuckets(50, 2000, 4);
  Workload w = MakeWorkload(12, 4, JoinGraphShape::kChain);  // spreads = 1
  PlanPtr plan = OptimizeLecStatic(w.query, w.catalog, model, memory).plan;
  double joint = ExactMultiParamEc(plan, w.query, w.catalog, model, memory);
  double static_ec =
      PlanExpectedCostStatic(plan, w.query, w.catalog, model, memory);
  EXPECT_LE(RelativeError(joint, static_ec), kSummationReassociationRelTol);
}

TEST(McValidatorTest, ExactJointEcRefusesHugeSupports) {
  CostModel model;
  Distribution memory = UniformBuckets(50, 2000, 4);
  Workload w = MakeWorkload(13, 5, JoinGraphShape::kClique, 3.0, 3.0);
  PlanPtr plan = OptimizeLecStatic(w.query, w.catalog, model, memory).plan;
  EXPECT_THROW(ExactMultiParamEc(plan, w.query, w.catalog, model, memory,
                                 /*max_combinations=*/1000),
               std::invalid_argument);
}

TEST(EngineReplayTest, DeterministicAndSane) {
  // Small chain query with a scaled-down catalog so the engine run is fast.
  Catalog catalog;
  catalog.AddTable("A", 60);
  catalog.AddTable("B", 40);
  catalog.AddTable("C", 30);
  Query q;
  q.AddTable(0);
  q.AddTable(1);
  q.AddTable(2);
  q.AddPredicate(0, 1, 2e-4);
  q.AddPredicate(1, 2, 3e-4);
  CostModel model;
  Distribution memory({{8, 0.5}, {64, 0.5}});
  PlanPtr plan = OptimizeLsc(q, catalog, model, 32).plan;

  Rng data_rng(7);
  EngineReplay replay(q, catalog, &data_rng);
  Rng mc_rng(8);
  EngineReplayStats stats = replay.Replay(plan, q, memory, nullptr, 20,
                                          &mc_rng);
  EXPECT_EQ(stats.trials, 20u);
  EXPECT_GT(stats.mean_io, 0);
  EXPECT_LE(stats.min_io, stats.mean_io);
  EXPECT_GE(stats.max_io, stats.mean_io);

  Rng mc_rng2(8);
  EngineReplayStats again = replay.Replay(plan, q, memory, nullptr, 20,
                                          &mc_rng2);
  EXPECT_DOUBLE_EQ(stats.mean_io, again.mean_io);
  EXPECT_DOUBLE_EQ(stats.stddev_io, again.stddev_io);

  // Markov trajectories work too, and a two-point memory really produces
  // I/O variation across trials.
  MarkovChain chain = MarkovChain::Drift({8, 64}, 0.5);
  Rng mc_rng3(9);
  EngineReplayStats dyn = replay.Replay(plan, q, memory, &chain, 20,
                                        &mc_rng3);
  EXPECT_GT(dyn.mean_io, 0);
  EXPECT_GT(stats.stddev_io, 0);
}

}  // namespace
}  // namespace lec::verify
