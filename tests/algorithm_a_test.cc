#include "optimizer/algorithm_a.h"

#include <gtest/gtest.h>

#include "cost/expected_cost.h"
#include "optimizer/algorithm_c.h"
#include "optimizer/system_r.h"
#include "query/generator.h"

namespace lec {
namespace {

TEST(AlgorithmATest, Example11FindsLecPlan) {
  // In Example 1.1, Algorithm A's candidate set {LSC@2000, LSC@700}
  // already contains the LEC plan (GH+sort is optimal at 700).
  Catalog catalog;
  catalog.AddTable("A", 1'000'000);
  catalog.AddTable("B", 400'000);
  Query q;
  q.AddTable(0);
  q.AddTable(1);
  q.AddPredicate(0, 1, 3000.0 / (1e6 * 4e5));
  q.RequireOrder(0);
  CostModel model;
  Distribution memory = Distribution::TwoPoint(2000, 0.8, 700, 0.2);
  OptimizeResult a = OptimizeAlgorithmA(q, catalog, model, memory);
  OptimizeResult c = OptimizeLecStatic(q, catalog, model, memory);
  EXPECT_NEAR(a.objective, c.objective, 1e-9 * c.objective);
  ASSERT_EQ(a.plan->kind, PlanNode::Kind::kSort);
  EXPECT_EQ(a.plan->left->method, JoinMethod::kGraceHash);
}

TEST(AlgorithmATest, CandidatesAreDeduplicated) {
  Catalog catalog;
  catalog.AddTable("A", 1000);
  catalog.AddTable("B", 100);
  Query q;
  q.AddTable(0);
  q.AddTable(1);
  q.AddPredicate(0, 1, 0.001);
  CostModel model;
  // Two memory values in the same cost regime produce the same LSC plan.
  Distribution memory = Distribution::TwoPoint(4000, 0.5, 5000, 0.5);
  std::vector<PlanPtr> cands =
      AlgorithmACandidates(q, catalog, model, memory, {});
  EXPECT_EQ(cands.size(), 1u);
}

TEST(AlgorithmATest, ObjectiveIsExpectedCostOfChosenPlan) {
  Rng rng(3);
  WorkloadOptions wopts;
  wopts.num_tables = 4;
  Workload w = GenerateWorkload(wopts, &rng);
  CostModel model;
  Distribution memory({{25, 0.3}, {400, 0.4}, {6000, 0.3}});
  OptimizeResult a = OptimizeAlgorithmA(w.query, w.catalog, model, memory);
  EXPECT_NEAR(a.objective,
              PlanExpectedCostStatic(a.plan, w.query, w.catalog, model,
                                     memory),
              1e-9 * std::max(1.0, a.objective));
}

// Algorithm A is sandwiched: at least as good as every single LSC plan it
// generated, and never better than Algorithm C's true LEC plan.
class AlgorithmASandwichTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AlgorithmASandwichTest, BetweenLscAndAlgorithmC) {
  Rng rng(GetParam());
  WorkloadOptions wopts;
  wopts.num_tables = static_cast<int>(3 + GetParam() % 3);
  wopts.shape = static_cast<JoinGraphShape>(GetParam() % 5);
  wopts.order_by_probability = 0.4;
  Workload w = GenerateWorkload(wopts, &rng);
  CostModel model;
  Distribution memory({{20, 0.25}, {200, 0.25}, {2000, 0.25}, {20000, 0.25}});
  OptimizeResult a = OptimizeAlgorithmA(w.query, w.catalog, model, memory);
  OptimizeResult c = OptimizeLecStatic(w.query, w.catalog, model, memory);
  // C is optimal, so C <= A.
  EXPECT_LE(c.objective, a.objective + 1e-9 * std::max(1.0, a.objective));
  // A dominates the traditional approach: "we are guaranteed to end up with
  // a plan whose expected cost is no higher than that of the plan chosen by
  // the traditional approach" (§3.2; the mean is a bucket representative or
  // not, A still evaluates candidates by EC).
  for (const Bucket& m : memory.buckets()) {
    OptimizeResult lsc = OptimizeLsc(w.query, w.catalog, model, m.value);
    double lsc_ec =
        PlanExpectedCostStatic(lsc.plan, w.query, w.catalog, model, memory);
    EXPECT_LE(a.objective, lsc_ec + 1e-9 * std::max(1.0, lsc_ec));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AlgorithmASandwichTest,
                         ::testing::Range<uint64_t>(100, 120));

TEST(AlgorithmATest, SingleBucketReducesToLsc) {
  Rng rng(4);
  WorkloadOptions wopts;
  wopts.num_tables = 4;
  Workload w = GenerateWorkload(wopts, &rng);
  CostModel model;
  Distribution point = Distribution::PointMass(750);
  OptimizeResult a = OptimizeAlgorithmA(w.query, w.catalog, model, point);
  OptimizeResult lsc = OptimizeLsc(w.query, w.catalog, model, 750);
  EXPECT_TRUE(PlanEquals(a.plan, lsc.plan));
  EXPECT_NEAR(a.objective, lsc.objective, 1e-9 * std::max(1.0, a.objective));
}

}  // namespace
}  // namespace lec
