// The serde round-trip contract: Read(Write(x)) == x with bit-identical
// doubles, in both encodings, and strict rejection of malformed input
// (NaN/inf where finiteness is an invariant, zero-mass buckets,
// denormalized probabilities, truncation, version skew).
#include "service/serde.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "optimizer/optimizer.h"
#include "query/generator.h"
#include "util/rng.h"

namespace lec {
namespace {

using serde::Encoding;
using serde::FromString;
using serde::Reader;
using serde::SerdeError;
using serde::ServeRequest;
using serde::ToString;
using serde::Writer;

const Encoding kBothEncodings[] = {Encoding::kText, Encoding::kBinary};

uint64_t Bits(double v) {
  uint64_t b;
  std::memcpy(&b, &v, sizeof(b));
  return b;
}

// -- Distributions ----------------------------------------------------------

TEST(SerdeDistributionTest, RoundTripIsBitIdenticalInBothEncodings) {
  Distribution d({{64, 0.25}, {512, 0.5}, {4096, 0.25}});
  for (Encoding enc : kBothEncodings) {
    Distribution back = FromString<Distribution>(ToString(d, enc));
    EXPECT_EQ(back, d);
    EXPECT_EQ(back.ContentHash(), d.ContentHash());
  }
}

TEST(SerdeDistributionTest, NonDyadicProbabilitiesRoundTripExactly) {
  // 1/3-ish masses whose normalized doubles are NOT exactly representable;
  // the validating constructor would re-divide and perturb them, the
  // trusted materializer must not.
  Distribution d({{1.0, 1.0}, {2.0, 1.0}, {7.5, 1.0}});
  for (Encoding enc : kBothEncodings) {
    Distribution back = FromString<Distribution>(ToString(d, enc));
    ASSERT_EQ(back.size(), d.size());
    for (size_t i = 0; i < d.size(); ++i) {
      EXPECT_EQ(Bits(back.bucket(i).value), Bits(d.bucket(i).value)) << i;
      EXPECT_EQ(Bits(back.bucket(i).prob), Bits(d.bucket(i).prob)) << i;
    }
  }
}

TEST(SerdeDistributionTest, DenormalDustRoundTrips) {
  // A subnormal value, and a probability far below the validating
  // constructor's 1e-12 dust threshold. Such buckets can't come from the
  // constructor but CAN come from the §3.6 product kernels (probs
  // multiply), so serialized snapshots may legitimately carry them and
  // serde must round-trip them exactly — hex-float text included.
  double denormal = 4.9406564584124654e-324;  // smallest positive double
  double tiny = 1e-300;
  double values[] = {denormal, 1.0};
  double probs[] = {tiny, 1.0};  // sums to 1.0 exactly (tiny is absorbed)
  Distribution d = Distribution::FromNormalizedView(DistView{values, probs, 2});
  for (Encoding enc : kBothEncodings) {
    Distribution back = FromString<Distribution>(ToString(d, enc));
    ASSERT_EQ(back.size(), 2u);
    EXPECT_EQ(Bits(back.bucket(0).value), Bits(denormal));
    EXPECT_EQ(Bits(back.bucket(0).prob), Bits(tiny));
    EXPECT_EQ(back.ContentHash(), d.ContentHash());
  }
}

TEST(SerdeDistributionTest, RandomDistributionsRoundTripExactly) {
  Rng rng(20260729);
  for (int round = 0; round < 200; ++round) {
    std::vector<Bucket> buckets;
    int n = static_cast<int>(rng.UniformInt(1, 12));
    for (int i = 0; i < n; ++i) {
      buckets.push_back({rng.Uniform(-1e6, 1e6), rng.Uniform(0.01, 1.0)});
    }
    Distribution d(std::move(buckets));
    Encoding enc = round % 2 == 0 ? Encoding::kText : Encoding::kBinary;
    Distribution back = FromString<Distribution>(ToString(d, enc));
    ASSERT_EQ(back, d) << "round " << round;
    ASSERT_EQ(back.ContentHash(), d.ContentHash()) << "round " << round;
  }
}

TEST(SerdeDistributionTest, TextEncodingUsesHexFloats) {
  std::string text = ToString(Distribution::PointMass(0.1));
  EXPECT_NE(text.find("0x1."), std::string::npos) << text;
}

/// Tokenized text for one crafted "dist" payload, with a valid header.
std::string CraftedDist(const std::string& body) {
  return "lecser text 3 \ndist " + body;
}

TEST(SerdeDistributionTest, RejectsNaNValue) {
  EXPECT_THROW(FromString<Distribution>(CraftedDist("1 nan 0x1p+0 ")),
               SerdeError);
}

TEST(SerdeDistributionTest, RejectsInfiniteValue) {
  EXPECT_THROW(FromString<Distribution>(CraftedDist("1 inf 0x1p+0 ")),
               SerdeError);
}

TEST(SerdeDistributionTest, RejectsNaNProbability) {
  EXPECT_THROW(FromString<Distribution>(CraftedDist("1 0x1p+0 nan ")),
               SerdeError);
}

TEST(SerdeDistributionTest, RejectsZeroMassBucket) {
  // 0.5 + 0.5 + a zero-mass bucket: the in-memory type drops zero-mass
  // buckets at construction, so serialized bytes containing one are
  // corrupt by definition.
  EXPECT_THROW(
      FromString<Distribution>(
          CraftedDist("3 0x1p+0 0x1p-1 0x1p+1 0x0p+0 0x1p+2 0x1p-1 ")),
      SerdeError);
}

TEST(SerdeDistributionTest, RejectsNegativeProbability) {
  EXPECT_THROW(
      FromString<Distribution>(
          CraftedDist("2 0x1p+0 0x1.8p+0 0x1p+1 -0x1p-1 ")),
      SerdeError);
}

TEST(SerdeDistributionTest, RejectsNonAscendingValues) {
  EXPECT_THROW(
      FromString<Distribution>(
          CraftedDist("2 0x1p+1 0x1p-1 0x1p+0 0x1p-1 ")),
      SerdeError);
}

TEST(SerdeDistributionTest, RejectsDenormalizedMass) {
  // Probabilities summing to 0.75: not a normalized distribution.
  EXPECT_THROW(
      FromString<Distribution>(
          CraftedDist("2 0x1p+0 0x1p-1 0x1p+1 0x1p-2 ")),
      SerdeError);
}

TEST(SerdeDistributionTest, RejectsEmptyDistribution) {
  EXPECT_THROW(FromString<Distribution>(CraftedDist("0 ")), SerdeError);
}

// -- Stream framing ---------------------------------------------------------

TEST(SerdeFramingTest, RejectsBadMagic) {
  EXPECT_THROW(FromString<Distribution>("wrong text 1 \ndist 1 0x1p+0 "),
               SerdeError);
}

TEST(SerdeFramingTest, RejectsUnknownEncoding) {
  EXPECT_THROW(FromString<Distribution>("lecser gzip 1 \ndist "), SerdeError);
}

TEST(SerdeFramingTest, RejectsFutureVersion) {
  EXPECT_THROW(FromString<Distribution>("lecser text 999 \ndist 1 0x1p+0 "),
               SerdeError);
}

TEST(SerdeFramingTest, RejectsPreWindowVersion) {
  // Version 1 predates kMinReadVersion: streams that old are refused
  // outright rather than misparsed.
  EXPECT_THROW(FromString<Distribution>("lecser text 1 \ndist 1 0x1p+0 "),
               SerdeError);
}

TEST(SerdeFramingTest, RejectsTruncatedInput) {
  // (Cutting only the final separator space would still parse — tokens
  // self-delimit at EOF — so every cut here lands inside a token or
  // removes one entirely.)
  std::string full = ToString(Distribution({{1, 0.5}, {2, 0.5}}));
  for (size_t cut : {full.size() - 3, full.size() - 8, full.size() / 2}) {
    EXPECT_THROW(FromString<Distribution>(full.substr(0, cut)), SerdeError)
        << "cut at " << cut;
  }
}

TEST(SerdeFramingTest, RejectsTruncatedBinaryInput) {
  std::string full =
      ToString(Distribution({{1, 0.5}, {2, 0.5}}), Encoding::kBinary);
  EXPECT_THROW(FromString<Distribution>(full.substr(0, full.size() - 3)),
               SerdeError);
}

TEST(SerdeFramingTest, RejectsWrongTag) {
  std::string bytes = ToString(Distribution::PointMass(1));
  EXPECT_THROW(FromString<Query>(bytes), SerdeError);
}

TEST(SerdeFramingTest, RejectsNumericTokenWithTrailingJunk) {
  EXPECT_THROW(FromString<Distribution>(CraftedDist("1x 0x1p+0 0x1p+0 ")),
               SerdeError);
}

// -- Markov chains ----------------------------------------------------------

TEST(SerdeMarkovTest, DriftChainRoundTripsBitIdentically) {
  MarkovChain chain = MarkovChain::Drift({64, 512, 4096}, 0.6);
  for (Encoding enc : kBothEncodings) {
    MarkovChain back = FromString<MarkovChain>(ToString(chain, enc));
    ASSERT_EQ(back.states(), chain.states());
    ASSERT_EQ(back.transition().size(), chain.transition().size());
    for (size_t i = 0; i < chain.transition().size(); ++i) {
      for (size_t j = 0; j < chain.transition()[i].size(); ++j) {
        EXPECT_EQ(Bits(back.transition()[i][j]),
                  Bits(chain.transition()[i][j]))
            << i << "," << j;
      }
    }
  }
}

TEST(SerdeMarkovTest, NormalizedNonDyadicRowsRoundTripBitIdentically) {
  // Rows built from weights 1:1:1 normalize to thirds — values the
  // validating constructor could not reproduce from their own serialized
  // form (renormalizing perturbs them). FromNormalizedRows must.
  MarkovChain chain({1, 2, 3}, {{1, 1, 1}, {2, 1, 1}, {0, 1, 3}});
  std::string bytes = ToString(chain);
  MarkovChain back = FromString<MarkovChain>(bytes);
  for (size_t i = 0; i < 3; ++i) {
    for (size_t j = 0; j < 3; ++j) {
      EXPECT_EQ(Bits(back.transition()[i][j]), Bits(chain.transition()[i][j]));
    }
  }
  // And the round trip is a fixed point: serialize(deserialize(b)) == b.
  EXPECT_EQ(ToString(back), bytes);
}

TEST(SerdeMarkovTest, RejectsDenormalizedRow) {
  EXPECT_THROW(
      FromString<MarkovChain>(
          "lecser text 3 \nmarkov 2 0x1p+0 0x1p+1 "
          "0x1p-1 0x1p-1 0x1p-2 0x1p-2 "),
      SerdeError);
}

TEST(SerdeMarkovTest, RejectsNegativeEntry) {
  EXPECT_THROW(
      FromString<MarkovChain>(
          "lecser text 3 \nmarkov 2 0x1p+0 0x1p+1 "
          "0x1.8p+0 -0x1p-1 0x0p+0 0x1p+0 "),
      SerdeError);
}

// -- Catalog / Query / Workload --------------------------------------------

Workload MakeTestWorkload(uint64_t seed, double sel_spread,
                          double size_spread, double order_by) {
  Rng rng(seed);
  WorkloadOptions wopts;
  wopts.num_tables = 5;
  wopts.shape = JoinGraphShape::kCycle;
  wopts.selectivity_spread = sel_spread;
  wopts.table_size_spread = size_spread;
  wopts.order_by_probability = order_by;
  return GenerateWorkload(wopts, &rng);
}

void ExpectWorkloadsEqual(const Workload& a, const Workload& b) {
  ASSERT_EQ(a.catalog.size(), b.catalog.size());
  for (size_t i = 0; i < a.catalog.size(); ++i) {
    const Table& ta = a.catalog.table(static_cast<TableId>(i));
    const Table& tb = b.catalog.table(static_cast<TableId>(i));
    EXPECT_EQ(ta.name, tb.name);
    EXPECT_EQ(Bits(ta.pages), Bits(tb.pages));
    EXPECT_EQ(Bits(ta.rows_per_page), Bits(tb.rows_per_page));
    ASSERT_EQ(ta.pages_dist.has_value(), tb.pages_dist.has_value());
    if (ta.pages_dist) {
      EXPECT_EQ(*ta.pages_dist, *tb.pages_dist);
    }
  }
  ASSERT_EQ(a.query.num_tables(), b.query.num_tables());
  for (QueryPos p = 0; p < a.query.num_tables(); ++p) {
    EXPECT_EQ(a.query.table(p), b.query.table(p));
  }
  ASSERT_EQ(a.query.num_predicates(), b.query.num_predicates());
  for (int i = 0; i < a.query.num_predicates(); ++i) {
    EXPECT_EQ(a.query.predicate(i).left, b.query.predicate(i).left);
    EXPECT_EQ(a.query.predicate(i).right, b.query.predicate(i).right);
    EXPECT_EQ(a.query.predicate(i).selectivity,
              b.query.predicate(i).selectivity);
  }
  EXPECT_EQ(a.query.required_order(), b.query.required_order());
}

TEST(SerdeWorkloadTest, GeneratedWorkloadsRoundTripInBothEncodings) {
  for (uint64_t seed : {1u, 7u, 42u}) {
    Workload w = MakeTestWorkload(seed, 3.0, 2.0, seed % 2 ? 1.0 : 0.0);
    for (Encoding enc : kBothEncodings) {
      Workload back = FromString<Workload>(ToString(w, enc));
      ExpectWorkloadsEqual(w, back);
    }
  }
}

TEST(SerdeWorkloadTest, RejectsQueryReferencingUnknownTable) {
  Workload w = MakeTestWorkload(3, 1.0, 1.0, 0.0);
  Query oversized;
  for (QueryPos p = 0; p < w.query.num_tables(); ++p) {
    oversized.AddTable(w.query.table(p));
  }
  oversized.AddTable(static_cast<TableId>(w.catalog.size() + 5));
  oversized.AddPredicate(0, w.query.num_tables(), 0.5);
  Workload bad;
  bad.catalog = w.catalog;
  bad.query = oversized;
  EXPECT_THROW(FromString<Workload>(ToString(bad)), SerdeError);
}

TEST(SerdeQueryTest, RejectsPredicateEndpointOutOfRange) {
  std::ostringstream out;
  Writer w(out);
  w.Tag("query");
  w.U64(2);
  w.I32(0);
  w.I32(1);
  w.U64(1);     // one predicate ...
  w.I32(0);
  w.I32(7);     // ... whose right endpoint names a nonexistent position
  serde::Write(w, Distribution::PointMass(0.5));
  w.Bool(false);
  EXPECT_THROW(FromString<Query>(out.str()), SerdeError);
}

// -- Plans and results ------------------------------------------------------

TEST(SerdePlanTest, OptimizedPlanRoundTripsStructurally) {
  Workload w = MakeTestWorkload(11, 3.0, 2.0, 1.0);
  CostModel model;
  Distribution memory({{64, 0.25}, {512, 0.5}, {4096, 0.25}});
  Optimizer optimizer;
  OptimizeRequest req;
  req.query = &w.query;
  req.catalog = &w.catalog;
  req.model = &model;
  req.memory = &memory;
  for (StrategyId id :
       {StrategyId::kLecStatic, StrategyId::kAlgorithmD,
        StrategyId::kBushyLec}) {
    OptimizeResult result = optimizer.Optimize(id, req);
    ASSERT_NE(result.plan, nullptr);
    for (Encoding enc : kBothEncodings) {
      PlanPtr back = FromString<PlanPtr>(ToString(result.plan, enc));
      EXPECT_TRUE(PlanEquals(back, result.plan));
      EXPECT_EQ(Bits(back->est_pages), Bits(result.plan->est_pages));
    }
  }
}

TEST(SerdePlanTest, NullPlanRoundTrips) {
  PlanPtr null;
  for (Encoding enc : kBothEncodings) {
    EXPECT_EQ(FromString<PlanPtr>(ToString(null, enc)), nullptr);
  }
}

TEST(SerdeResultTest, OptimizeResultRoundTripsBitIdentically) {
  Workload w = MakeTestWorkload(13, 3.0, 2.0, 0.0);
  CostModel model;
  Distribution memory({{64, 0.5}, {4096, 0.5}});
  Optimizer optimizer;
  OptimizeRequest req;
  req.query = &w.query;
  req.catalog = &w.catalog;
  req.model = &model;
  req.memory = &memory;
  OptimizeResult result = optimizer.Optimize(StrategyId::kLecStatic, req);
  for (Encoding enc : kBothEncodings) {
    OptimizeResult back = FromString<OptimizeResult>(ToString(result, enc));
    EXPECT_EQ(Bits(back.objective), Bits(result.objective));
    EXPECT_EQ(back.candidates_considered, result.candidates_considered);
    EXPECT_EQ(back.cost_evaluations, result.cost_evaluations);
    EXPECT_EQ(Bits(back.elapsed_seconds), Bits(result.elapsed_seconds));
    EXPECT_EQ(back.candidates_by_phase, result.candidates_by_phase);
    EXPECT_TRUE(PlanEquals(back.plan, result.plan));
  }
}

// -- ServeRequest -----------------------------------------------------------

TEST(SerdeServeRequestTest, RoundTripsWithChainAndKnobs) {
  ServeRequest request;
  request.strategy = "lec_dynamic";
  request.workload = MakeTestWorkload(17, 3.0, 1.0, 1.0);
  request.memory = Distribution({{64, 0.25}, {512, 0.5}, {4096, 0.25}});
  request.chain = MarkovChain::Drift({64, 512, 4096}, 0.7);
  request.options.consider_sort_enforcers = true;
  request.options.size_buckets = 13;
  request.top_c = 5;
  request.seed = 99;
  for (Encoding enc : kBothEncodings) {
    ServeRequest back = FromString<ServeRequest>(ToString(request, enc));
    EXPECT_EQ(back.strategy, request.strategy);
    ExpectWorkloadsEqual(back.workload, request.workload);
    EXPECT_EQ(back.memory, request.memory);
    ASSERT_TRUE(back.chain.has_value());
    EXPECT_EQ(back.chain->states(), request.chain->states());
    EXPECT_EQ(back.options.consider_sort_enforcers, true);
    EXPECT_EQ(back.options.size_buckets, 13u);
    EXPECT_EQ(back.top_c, 5u);
    EXPECT_EQ(back.seed, 99u);
  }
}

TEST(SerdeServeRequestTest, RejectsUnknownStrategy) {
  ServeRequest request;
  request.strategy = "lec_static";
  request.workload = MakeTestWorkload(19, 1.0, 1.0, 0.0);
  std::string bytes = ToString(request);
  size_t pos = bytes.find("lec_static");
  ASSERT_NE(pos, std::string::npos);
  bytes.replace(pos, 10, "lec_rococo");
  EXPECT_THROW(FromString<ServeRequest>(bytes), SerdeError);
}

TEST(SerdeServeRequestTest, RejectsLecDynamicWithoutChain) {
  ServeRequest request;
  request.strategy = "lec_dynamic";
  request.workload = MakeTestWorkload(23, 1.0, 1.0, 0.0);
  request.chain.reset();
  EXPECT_THROW(FromString<ServeRequest>(ToString(request)), SerdeError);
}

// -- Reader header handoff (the lec_serve REPL path) ------------------------

TEST(SerdeReaderTest, HeaderConsumedModeResumesAfterMagicWord) {
  Distribution d({{1, 0.5}, {2, 0.5}});
  std::string bytes = ToString(d);
  std::istringstream in(bytes);
  std::string magic;
  in >> magic;
  ASSERT_EQ(magic, "lecser");
  Reader r(in, Reader::kHeaderConsumed);
  EXPECT_EQ(serde::ReadDistribution(r), d);
}

}  // namespace
}  // namespace lec
