#include "plan/plan.h"

#include <stdexcept>

#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "plan/printer.h"
#include "query/query.h"

namespace lec {
namespace {

PlanPtr TwoJoinPlan() {
  PlanPtr a = MakeAccess(0, 100);
  PlanPtr b = MakeAccess(1, 200);
  PlanPtr c = MakeAccess(2, 300);
  PlanPtr ab = MakeJoin(a, b, JoinMethod::kSortMerge, {0}, /*order=*/0, 50);
  return MakeJoin(ab, c, JoinMethod::kGraceHash, {1}, kUnsorted, 10);
}

TEST(PlanTest, AccessNodeBasics) {
  PlanPtr a = MakeAccess(3, 42);
  EXPECT_EQ(a->kind, PlanNode::Kind::kAccess);
  EXPECT_EQ(a->table_pos, 3);
  EXPECT_EQ(a->tables, TableSet{1} << 3);
  EXPECT_EQ(a->order, kUnsorted);
  EXPECT_DOUBLE_EQ(a->est_pages, 42);
}

TEST(PlanTest, JoinNodeCombinesTableSets) {
  PlanPtr p = TwoJoinPlan();
  EXPECT_EQ(p->tables, 0b111u);
  EXPECT_EQ(p->left->tables, 0b011u);
  EXPECT_EQ(CountJoins(p), 2);
}

TEST(PlanTest, JoinRejectsOverlap) {
  PlanPtr a = MakeAccess(0, 100);
  PlanPtr b = MakeAccess(0, 100);
  EXPECT_THROW(MakeJoin(a, b, JoinMethod::kNestedLoop, {}, kUnsorted, 1),
               std::invalid_argument);
  EXPECT_THROW(MakeJoin(nullptr, b, JoinMethod::kNestedLoop, {}, kUnsorted,
                        1),
               std::invalid_argument);
}

TEST(PlanTest, SortNodePreservesTablesAndPages) {
  PlanPtr p = TwoJoinPlan();
  PlanPtr s = MakeSort(p, 1);
  EXPECT_EQ(s->kind, PlanNode::Kind::kSort);
  EXPECT_EQ(s->tables, p->tables);
  EXPECT_EQ(s->order, 1);
  EXPECT_DOUBLE_EQ(s->est_pages, p->est_pages);
  EXPECT_EQ(CountJoins(s), 2);
  EXPECT_THROW(MakeSort(nullptr, 0), std::invalid_argument);
}

TEST(PlanTest, JoinOrderPermutation) {
  PlanPtr p = TwoJoinPlan();
  EXPECT_EQ(JoinOrder(p), (std::vector<QueryPos>{0, 1, 2}));
  EXPECT_EQ(JoinOrder(MakeSort(p, 0)), (std::vector<QueryPos>{0, 1, 2}));
}

TEST(PlanTest, PlanEqualsStructural) {
  PlanPtr p1 = TwoJoinPlan();
  PlanPtr p2 = TwoJoinPlan();
  EXPECT_TRUE(PlanEquals(p1, p2));
  EXPECT_TRUE(PlanEquals(p1, p1));
  // Different method.
  PlanPtr p3 = MakeJoin(p1->left, MakeAccess(2, 300),
                        JoinMethod::kNestedLoop, {1}, kUnsorted, 10);
  EXPECT_FALSE(PlanEquals(p1, p3));
  // Different predicate list.
  PlanPtr p4 = MakeJoin(p1->left, MakeAccess(2, 300), JoinMethod::kGraceHash,
                        {0}, kUnsorted, 10);
  EXPECT_FALSE(PlanEquals(p1, p4));
  // Sort-wrapped differs from bare.
  EXPECT_FALSE(PlanEquals(p1, MakeSort(p1, 0)));
  EXPECT_FALSE(PlanEquals(p1, nullptr));
}

TEST(PlanTest, JoinMethodNames) {
  EXPECT_EQ(ToString(JoinMethod::kNestedLoop), "NL");
  EXPECT_EQ(ToString(JoinMethod::kSortMerge), "SM");
  EXPECT_EQ(ToString(JoinMethod::kGraceHash), "GH");
}

TEST(PlanPrinterTest, InlineRendering) {
  Catalog catalog;
  catalog.AddTable("A", 100);
  catalog.AddTable("B", 200);
  catalog.AddTable("C", 300);
  Query q;
  q.AddTable(0);
  q.AddTable(1);
  q.AddTable(2);
  q.AddPredicate(0, 1, 0.01);
  q.AddPredicate(1, 2, 0.01);
  PlanPtr p = TwoJoinPlan();
  EXPECT_EQ(PlanToString(p, q, catalog), "((A SM B) GH C)");
  EXPECT_EQ(PlanToString(MakeSort(p, 0), q, catalog),
            "Sort(((A SM B) GH C))");
}

TEST(PlanPrinterTest, TreeRenderingMentionsEveryOperator) {
  Catalog catalog;
  catalog.AddTable("A", 100);
  catalog.AddTable("B", 200);
  catalog.AddTable("C", 300);
  Query q;
  q.AddTable(0);
  q.AddTable(1);
  q.AddTable(2);
  q.AddPredicate(0, 1, 0.01);
  q.AddPredicate(1, 2, 0.01);
  std::string tree = PlanToTreeString(MakeSort(TwoJoinPlan(), 1), q, catalog);
  EXPECT_NE(tree.find("Sort on p1"), std::string::npos);
  EXPECT_NE(tree.find("SMJoin on p0"), std::string::npos);
  EXPECT_NE(tree.find("GHJoin on p1"), std::string::npos);
  EXPECT_NE(tree.find("Scan A"), std::string::npos);
  EXPECT_NE(tree.find("Scan C"), std::string::npos);
}

}  // namespace
}  // namespace lec
