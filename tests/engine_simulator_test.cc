#include "exec/engine_simulator.h"

#include <gtest/gtest.h>

#include "cost/cost_model.h"
#include "cost/expected_cost.h"
#include "optimizer/system_r.h"

namespace lec {
namespace {

// A scaled-down Example 1.1: A = 1000 pages, B = 400, selectivity tuned for
// a small result. sqrt(A) ~ 31.6, sqrt(B) = 20.
struct ScaledWorkload {
  Catalog catalog;
  Query query;

  ScaledWorkload(double a_pages = 1000, double b_pages = 400,
                 double sel = 1e-4) {
    catalog.AddTable("A", a_pages);
    catalog.AddTable("B", b_pages);
    query.AddTable(0);
    query.AddTable(1);
    query.AddPredicate(0, 1, sel);
  }
};

TEST(EngineSimulatorTest, WorkloadShapeMatchesCatalog) {
  ScaledWorkload w;
  Rng rng(1);
  EngineWorkload data = BuildChainEngineWorkload(w.query, w.catalog, &rng);
  ASSERT_EQ(data.tables.size(), 2u);
  EXPECT_EQ(data.tables[0].num_pages(), 1000u);
  EXPECT_EQ(data.tables[1].num_pages(), 400u);
}

TEST(EngineSimulatorTest, RejectsNonChainQueries) {
  Catalog catalog;
  catalog.AddTable("A", 10);
  catalog.AddTable("B", 10);
  catalog.AddTable("C", 10);
  Query q;
  q.AddTable(0);
  q.AddTable(1);
  q.AddTable(2);
  q.AddPredicate(0, 2, 0.01);  // not chain-adjacent as predicate 0
  q.AddPredicate(1, 2, 0.01);
  Rng rng(2);
  EXPECT_THROW(BuildChainEngineWorkload(q, catalog, &rng),
               std::invalid_argument);
}

TEST(EngineSimulatorTest, ResultSizeNearExpectation) {
  ScaledWorkload w(200, 100, 1e-3);
  Rng rng(3);
  EngineWorkload data = BuildChainEngineWorkload(w.query, w.catalog, &rng);
  PlanPtr plan = MakeJoin(MakeAccess(0, 200), MakeAccess(1, 100),
                          JoinMethod::kGraceHash, {0}, kUnsorted, 20);
  EngineRunResult r = ExecutePlanOnEngine(plan, w.query, data, {50});
  // Expected tuples = sel * |A| * |B| * tuples_per_page = 1e-3*200*100*64.
  double expected = 1e-3 * 200 * 100 * kTuplesPerPage;
  EXPECT_GT(r.result_tuples, expected * 0.7);
  EXPECT_LT(r.result_tuples, expected * 1.3);
}

TEST(EngineSimulatorTest, AllMethodsProduceSameResultCount) {
  ScaledWorkload w(60, 40, 1e-3);
  Rng rng(4);
  EngineWorkload data = BuildChainEngineWorkload(w.query, w.catalog, &rng);
  size_t counts[3];
  int i = 0;
  for (JoinMethod m : kAllJoinMethods) {
    PlanPtr plan =
        MakeJoin(MakeAccess(0, 60), MakeAccess(1, 40), m, {0}, kUnsorted, 2);
    counts[i++] = ExecutePlanOnEngine(plan, w.query, data, {12})
                      .result_tuples;
  }
  EXPECT_EQ(counts[0], counts[1]);
  EXPECT_EQ(counts[1], counts[2]);
}

TEST(EngineSimulatorTest, MeasuredIoCrossesModelThreshold) {
  // The decisive fidelity property behind Example 1.1: dropping memory
  // below sqrt(L) costs the sort-merge join an extra pass over the data in
  // *both* the model and the engine.
  ScaledWorkload w;
  Rng rng(5);
  EngineWorkload data = BuildChainEngineWorkload(w.query, w.catalog, &rng);
  PlanPtr sm = MakeJoin(MakeAccess(0, 1000), MakeAccess(1, 400),
                        JoinMethod::kSortMerge, {0}, 0, 10);
  // sqrt(1000+400 combined run count threshold) — probe well above and
  // well below the model's sqrt(1000) ~ 31.6.
  EngineRunResult plenty = ExecutePlanOnEngine(sm, w.query, data, {60});
  EngineRunResult tight = ExecutePlanOnEngine(sm, w.query, data, {12});
  // An extra merge pass re-reads and re-writes ~1400 pages.
  EXPECT_GT(tight.total_io(), plenty.total_io() + 2000);
}

TEST(EngineSimulatorTest, ThreeTableChainExecutesAnyLeftDeepOrder) {
  Catalog catalog;
  catalog.AddTable("A", 40);
  catalog.AddTable("B", 30);
  catalog.AddTable("C", 20);
  Query q;
  q.AddTable(0);
  q.AddTable(1);
  q.AddTable(2);
  q.AddPredicate(0, 1, 2e-3);
  q.AddPredicate(1, 2, 2e-3);
  Rng rng(6);
  EngineWorkload data = BuildChainEngineWorkload(q, catalog, &rng);
  // Order (A B) C.
  PlanPtr ab = MakeJoin(MakeAccess(0, 40), MakeAccess(1, 30),
                        JoinMethod::kGraceHash, {0}, kUnsorted, 2.4);
  PlanPtr abc = MakeJoin(ab, MakeAccess(2, 20), JoinMethod::kGraceHash, {1},
                         kUnsorted, 0.1);
  // Order (B C) A — extends the interval to the left.
  PlanPtr bc = MakeJoin(MakeAccess(1, 30), MakeAccess(2, 20),
                        JoinMethod::kGraceHash, {1}, kUnsorted, 1.2);
  PlanPtr bca = MakeJoin(bc, MakeAccess(0, 40), JoinMethod::kGraceHash, {0},
                         kUnsorted, 0.1);
  EngineRunResult r1 = ExecutePlanOnEngine(abc, q, data, {16});
  EngineRunResult r2 = ExecutePlanOnEngine(bca, q, data, {16});
  // Join results must agree regardless of order.
  EXPECT_EQ(r1.result_tuples, r2.result_tuples);
}

TEST(EngineSimulatorTest, SortEnforcerChargesIo) {
  ScaledWorkload w(100, 50, 5e-4);
  Rng rng(7);
  EngineWorkload data = BuildChainEngineWorkload(w.query, w.catalog, &rng);
  PlanPtr join = MakeJoin(MakeAccess(0, 100), MakeAccess(1, 50),
                          JoinMethod::kGraceHash, {0}, kUnsorted, 2.5);
  PlanPtr sorted = MakeSort(join, 0);
  EngineRunResult without = ExecutePlanOnEngine(join, w.query, data, {8});
  EngineRunResult with = ExecutePlanOnEngine(sorted, w.query, data, {8});
  EXPECT_GT(with.total_io(), without.total_io());
  EXPECT_EQ(with.result_tuples, without.result_tuples);
}

TEST(EngineSimulatorTest, DynamicMemoryByPhase) {
  Catalog catalog;
  catalog.AddTable("A", 40);
  catalog.AddTable("B", 30);
  catalog.AddTable("C", 20);
  Query q;
  q.AddTable(0);
  q.AddTable(1);
  q.AddTable(2);
  q.AddPredicate(0, 1, 2e-3);
  q.AddPredicate(1, 2, 2e-3);
  Rng rng(8);
  EngineWorkload data = BuildChainEngineWorkload(q, catalog, &rng);
  PlanPtr ab = MakeJoin(MakeAccess(0, 40), MakeAccess(1, 30),
                        JoinMethod::kSortMerge, {0}, 0, 2.4);
  PlanPtr abc = MakeJoin(ab, MakeAccess(2, 20), JoinMethod::kSortMerge, {1},
                         1, 0.1);
  // Phase 0 rich, phase 1 starved vs the reverse: different I/O totals
  // (phase 0 moves more data, so starving it hurts more).
  EngineRunResult rich_then_poor =
      ExecutePlanOnEngine(abc, q, data, {32, 3});
  EngineRunResult poor_then_rich =
      ExecutePlanOnEngine(abc, q, data, {3, 32});
  EXPECT_NE(rich_then_poor.total_io(), poor_then_rich.total_io());
  EXPECT_GT(poor_then_rich.total_io(), rich_then_poor.total_io());
}

TEST(EngineSimulatorTest, EmptyMemoryVectorRejected) {
  ScaledWorkload w(10, 10, 1e-2);
  Rng rng(9);
  EngineWorkload data = BuildChainEngineWorkload(w.query, w.catalog, &rng);
  PlanPtr plan = MakeJoin(MakeAccess(0, 10), MakeAccess(1, 10),
                          JoinMethod::kGraceHash, {0}, kUnsorted, 1);
  EXPECT_THROW(ExecutePlanOnEngine(plan, w.query, data, {}),
               std::invalid_argument);
}

}  // namespace
}  // namespace lec
