#include "cost/size_propagation.h"

#include <gtest/gtest.h>

#include "dist/builders.h"
#include "util/rng.h"

namespace lec {
namespace {

TEST(SizePropagationTest, PointMassesMultiply) {
  Distribution l = Distribution::PointMass(1000);
  Distribution r = Distribution::PointMass(500);
  Distribution s = Distribution::PointMass(0.01);
  Distribution out = JoinSizeDistribution(l, r, s, 27);
  EXPECT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out.Mean(), 5000);
}

TEST(SizePropagationTest, ExactModeMeanIsProductOfMeans) {
  Distribution l = Distribution::TwoPoint(100, 0.5, 300, 0.5);
  Distribution r = Distribution::TwoPoint(10, 0.25, 50, 0.75);
  Distribution s = Distribution::TwoPoint(0.1, 0.5, 0.2, 0.5);
  Distribution out = JoinSizeDistribution(
      l, r, s, 1000, SizePropagationMode::kExactThenRebucket);
  EXPECT_NEAR(out.Mean(), l.Mean() * r.Mean() * s.Mean(), 1e-9);
  EXPECT_EQ(out.size(), 8u);
}

TEST(SizePropagationTest, CubeRootModeRespectsBudget) {
  std::vector<Bucket> lv, rv, sv;
  Rng rng(3);
  for (int i = 0; i < 20; ++i) {
    lv.push_back({rng.LogUniform(10, 1e5), 0.05});
    rv.push_back({rng.LogUniform(10, 1e5), 0.05});
    sv.push_back({rng.LogUniform(1e-6, 1e-2), 0.05});
  }
  Distribution l(std::move(lv)), r(std::move(rv)), s(std::move(sv));
  for (size_t b : {8u, 27u, 64u}) {
    Distribution out = JoinSizeDistribution(
        l, r, s, b, SizePropagationMode::kCubeRootPrebucket);
    EXPECT_LE(out.size(), b);
    // Mean preserved exactly: rebucketing is conditional-mean based and the
    // product of independent means is the mean of the product.
    EXPECT_NEAR(out.Mean(), l.Mean() * r.Mean() * s.Mean(),
                1e-9 * l.Mean() * r.Mean() * s.Mean());
  }
}

TEST(SizePropagationTest, CubeRootApproximatesExact) {
  Rng rng(4);
  std::vector<Bucket> lv, rv;
  for (int i = 0; i < 10; ++i) {
    lv.push_back({rng.Uniform(100, 1000), 0.1});
    rv.push_back({rng.Uniform(100, 1000), 0.1});
  }
  Distribution l(std::move(lv)), r(std::move(rv));
  Distribution s = UncertainSelectivity(0.01, 4);
  Distribution exact = JoinSizeDistribution(
      l, r, s, 4096, SizePropagationMode::kExactThenRebucket);
  Distribution approx = JoinSizeDistribution(
      l, r, s, 27, SizePropagationMode::kCubeRootPrebucket);
  EXPECT_LT(exact.CdfDistance(approx), 0.35);
  EXPECT_NEAR(approx.Mean(), exact.Mean(), 1e-9 * exact.Mean());
}

TEST(SizePropagationTest, CombinedSelectivityProduct) {
  Query q;
  q.AddTable(0);
  q.AddTable(1);
  q.AddTable(2);
  q.AddPredicate(0, 1, Distribution::TwoPoint(0.1, 0.5, 0.2, 0.5));
  q.AddPredicate(0, 2, 0.5);
  Distribution combined = CombinedSelectivityDistribution(q, {0, 1}, 64);
  EXPECT_NEAR(combined.Mean(), 0.15 * 0.5, 1e-12);
  EXPECT_EQ(combined.size(), 2u);
  Distribution empty = CombinedSelectivityDistribution(q, {}, 64);
  EXPECT_EQ(empty.size(), 1u);
  EXPECT_DOUBLE_EQ(empty.Mean(), 1.0);
}

}  // namespace
}  // namespace lec
