#include "query/query.h"

#include <stdexcept>

#include <gtest/gtest.h>

#include "catalog/catalog.h"

namespace lec {
namespace {

Query ChainQuery(int n) {
  Query q;
  for (int i = 0; i < n; ++i) q.AddTable(i);
  for (int i = 0; i + 1 < n; ++i) q.AddPredicate(i, i + 1, 0.001);
  return q;
}

TEST(QueryTest, SetHelpers) {
  EXPECT_EQ(SetSize(0b1011), 3);
  EXPECT_TRUE(Contains(0b1011, 0));
  EXPECT_FALSE(Contains(0b1011, 2));
  std::vector<QueryPos> members = Members(0b1011);
  EXPECT_EQ(members, (std::vector<QueryPos>{0, 1, 3}));
  EXPECT_TRUE(Members(0).empty());
}

TEST(QueryTest, AllTablesMask) {
  Query q = ChainQuery(4);
  EXPECT_EQ(q.AllTables(), 0b1111u);
}

TEST(QueryTest, PredicateValidation) {
  Query q = ChainQuery(3);
  EXPECT_THROW(q.AddPredicate(0, 0, 0.5), std::invalid_argument);
  EXPECT_THROW(q.AddPredicate(0, 5, 0.5), std::invalid_argument);
  EXPECT_THROW(q.AddPredicate(0, 2, 0.0), std::invalid_argument);
  EXPECT_THROW(q.AddPredicate(0, 2, 1.5), std::invalid_argument);
  EXPECT_NO_THROW(q.AddPredicate(0, 2, 1.0));
}

TEST(QueryTest, RequireOrderValidation) {
  Query q = ChainQuery(3);
  EXPECT_FALSE(q.required_order().has_value());
  q.RequireOrder(1);
  EXPECT_EQ(*q.required_order(), 1);
  EXPECT_THROW(q.RequireOrder(7), std::invalid_argument);
  EXPECT_THROW(q.RequireOrder(-1), std::invalid_argument);
}

TEST(QueryTest, ConnectingPredicatesChain) {
  Query q = ChainQuery(4);  // predicates: 0:(0,1) 1:(1,2) 2:(2,3)
  EXPECT_EQ(q.ConnectingPredicates(0b0001, 1), (std::vector<int>{0}));
  EXPECT_EQ(q.ConnectingPredicates(0b0011, 2), (std::vector<int>{1}));
  EXPECT_TRUE(q.ConnectingPredicates(0b0001, 3).empty());
  // j already inside the subset -> nothing connects.
  EXPECT_TRUE(q.ConnectingPredicates(0b0011, 1).empty());
}

TEST(QueryTest, ConnectingPredicatesMultiple) {
  Query q;
  for (int i = 0; i < 3; ++i) q.AddTable(i);
  q.AddPredicate(0, 2, 0.1);
  q.AddPredicate(1, 2, 0.2);
  std::vector<int> preds = q.ConnectingPredicates(0b011, 2);
  EXPECT_EQ(preds, (std::vector<int>{0, 1}));
}

TEST(QueryTest, InternalPredicates) {
  Query q = ChainQuery(4);
  EXPECT_EQ(q.InternalPredicates(0b0111), (std::vector<int>{0, 1}));
  EXPECT_TRUE(q.InternalPredicates(0b0101).empty());
  EXPECT_EQ(q.InternalPredicates(q.AllTables()),
            (std::vector<int>{0, 1, 2}));
}

TEST(QueryTest, IsConnected) {
  Query q = ChainQuery(4);
  EXPECT_TRUE(q.IsConnected(0b0011));
  EXPECT_TRUE(q.IsConnected(0b0111));
  EXPECT_FALSE(q.IsConnected(0b0101));  // {0, 2} not adjacent
  EXPECT_TRUE(q.IsConnected(0b0001));   // singleton
  EXPECT_TRUE(q.IsConnected(0));        // empty set, vacuously
}

TEST(QueryTest, MeanSelectivityIsProductOfMeans) {
  Query q;
  q.AddTable(0);
  q.AddTable(1);
  q.AddTable(2);
  q.AddPredicate(0, 1, Distribution::TwoPoint(0.1, 0.5, 0.3, 0.5));
  q.AddPredicate(1, 2, 0.5);
  EXPECT_DOUBLE_EQ(q.MeanSelectivity({0}), 0.2);
  EXPECT_DOUBLE_EQ(q.MeanSelectivity({0, 1}), 0.1);
  EXPECT_DOUBLE_EQ(q.MeanSelectivity({}), 1.0);
}

TEST(QueryTest, PredicateTouchesAndOther) {
  JoinPredicate p{1, 3, Distribution::PointMass(0.5)};
  EXPECT_TRUE(p.Touches(1));
  EXPECT_TRUE(p.Touches(3));
  EXPECT_FALSE(p.Touches(2));
  EXPECT_EQ(p.Other(1), 3);
  EXPECT_EQ(p.Other(3), 1);
}

TEST(QueryTest, DistributionalSelectivityValidation) {
  Query q;
  q.AddTable(0);
  q.AddTable(1);
  EXPECT_THROW(q.AddPredicate(0, 1, Distribution::TwoPoint(0.5, 0.5, 1.5,
                                                           0.5)),
               std::invalid_argument);
}

}  // namespace
}  // namespace lec
