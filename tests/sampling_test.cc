#include "optimizer/sampling.h"

#include <gtest/gtest.h>

#include "dist/builders.h"
#include "query/generator.h"

namespace lec {
namespace {

TEST(SamplingTest, PointMassSelectivityHasZeroEvpi) {
  Catalog catalog;
  catalog.AddTable("A", 1000);
  catalog.AddTable("B", 200);
  Query q;
  q.AddTable(0);
  q.AddTable(1);
  q.AddPredicate(0, 1, 0.001);
  CostModel model;
  SamplingDecision d = EvaluateSampling(q, catalog, model,
                                        Distribution::PointMass(500), 0);
  EXPECT_NEAR(d.Evpi(), 0, 1e-9);
  EXPECT_FALSE(d.ShouldSample(1.0));
}

TEST(SamplingTest, EvpiPositiveWhenPlanDependsOnSelectivity) {
  // The selectivity decides whether the intermediate fits in memory, so
  // knowing it flips the join method: perfect information has real value.
  Catalog catalog;
  catalog.AddTable("A", 2000);
  catalog.AddTable("B", 2000);
  catalog.AddTable("C", 400);
  Query q;
  q.AddTable(0);
  q.AddTable(1);
  q.AddTable(2);
  // A⋈B result: 40 pages or 4000 pages depending on σ. At 40 pages the
  // follow-up join with C can run as an in-memory nested loop; at 4000
  // pages (min side C=400 > M-2) only hashing stays cheap — so the best
  // second-join method depends on σ and perfect information pays.
  q.AddPredicate(0, 1, Distribution::TwoPoint(1e-5, 0.5, 1e-3, 0.5));
  q.AddPredicate(1, 2, 0.002);
  CostModel model;
  Distribution memory = Distribution::PointMass(300);
  SamplingDecision d = EvaluateSampling(q, catalog, model, memory, 0);
  EXPECT_GT(d.Evpi(), 0);
  EXPECT_TRUE(d.ShouldSample(d.Evpi() / 2));
  EXPECT_FALSE(d.ShouldSample(d.Evpi() * 2));
}

TEST(SamplingTest, EvpiNonNegativeProperty) {
  // EVPI >= 0 always: information can't hurt a rational optimizer.
  CostModel model;
  Distribution memory({{40, 0.5}, {800, 0.5}});
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    Rng rng(seed);
    WorkloadOptions wopts;
    wopts.num_tables = 3 + static_cast<int>(seed % 2);
    wopts.selectivity_spread = 8.0;
    Workload w = GenerateWorkload(wopts, &rng);
    for (int p = 0; p < w.query.num_predicates(); ++p) {
      SamplingDecision d =
          EvaluateSampling(w.query, w.catalog, model, memory, p);
      EXPECT_GE(d.Evpi(), -1e-6 * d.ec_without_sampling)
          << "seed=" << seed << " predicate=" << p;
    }
  }
}

TEST(SamplingTest, WiderUncertaintyWeaklyMoreValuable) {
  Catalog catalog;
  catalog.AddTable("A", 2000);
  catalog.AddTable("B", 2000);
  Query base;
  base.AddTable(0);
  base.AddTable(1);
  base.AddPredicate(0, 1, 0.001);
  CostModel model;
  Distribution memory = Distribution::PointMass(300);
  double prev = -1;
  for (double spread : {1.0, 3.0, 10.0, 30.0}) {
    Query q = base.WithSelectivity(
        0, UncertainSelectivity(1e-4, spread));
    SamplingDecision d = EvaluateSampling(q, catalog, model, memory, 0);
    EXPECT_GE(d.Evpi() + 1e-9, prev) << "spread=" << spread;
    prev = d.Evpi();
  }
}

TEST(SamplingTest, ValidatesPredicateIndex) {
  Catalog catalog;
  catalog.AddTable("A", 10);
  catalog.AddTable("B", 10);
  Query q;
  q.AddTable(0);
  q.AddTable(1);
  q.AddPredicate(0, 1, 0.1);
  CostModel model;
  EXPECT_THROW(EvaluateSampling(q, catalog, model,
                                Distribution::PointMass(100), 5),
               std::invalid_argument);
}

TEST(QueryWithSelectivityTest, ReplacesOnlyTargetPredicate) {
  Query q;
  q.AddTable(0);
  q.AddTable(1);
  q.AddTable(2);
  q.AddPredicate(0, 1, 0.1);
  q.AddPredicate(1, 2, 0.2);
  Query modified = q.WithSelectivity(0, Distribution::PointMass(0.5));
  EXPECT_DOUBLE_EQ(modified.predicate(0).selectivity.Mean(), 0.5);
  EXPECT_DOUBLE_EQ(modified.predicate(1).selectivity.Mean(), 0.2);
  EXPECT_DOUBLE_EQ(q.predicate(0).selectivity.Mean(), 0.1);  // original
  EXPECT_THROW(q.WithSelectivity(0, Distribution::PointMass(2.0)),
               std::invalid_argument);
}

TEST(QueryCrossingPredicatesTest, FindsPredicatesAcrossSets) {
  Query q;
  for (int i = 0; i < 4; ++i) q.AddTable(i);
  q.AddPredicate(0, 1, 0.1);
  q.AddPredicate(1, 2, 0.1);
  q.AddPredicate(2, 3, 0.1);
  EXPECT_EQ(q.CrossingPredicates(0b0011, 0b1100), (std::vector<int>{1}));
  EXPECT_EQ(q.CrossingPredicates(0b0101, 0b1010),
            (std::vector<int>{0, 1, 2}));
  EXPECT_TRUE(q.CrossingPredicates(0b0001, 0b1000).empty());
  EXPECT_THROW(q.CrossingPredicates(0b0011, 0b0010),
               std::invalid_argument);
}

}  // namespace
}  // namespace lec
