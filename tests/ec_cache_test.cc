// The expected-cost memo cache: hit/miss accounting, identity keyed on
// distribution content, and the bit-identical-objective guarantee on
// Algorithm D and the Algorithm A/B scoring walk.
#include "cost/ec_cache.h"

#include <gtest/gtest.h>

#include "cost/expected_cost.h"
#include "dist/builders.h"
#include "optimizer/algorithm_a.h"
#include "optimizer/algorithm_d.h"
#include "query/generator.h"
#include "verify/tolerance.h"

namespace lec {
namespace {

Workload MakeWorkload(uint64_t seed, int tables) {
  Rng rng(seed);
  WorkloadOptions wopts;
  wopts.num_tables = tables;
  wopts.shape = JoinGraphShape::kChain;
  wopts.order_by_probability = 1.0;
  wopts.selectivity_spread = 3.0;
  wopts.table_size_spread = 2.0;
  return GenerateWorkload(wopts, &rng);
}

TEST(DistributionContentHashTest, EqualContentHashesEqual) {
  Distribution a({{10, 0.5}, {20, 0.5}});
  Distribution b({{20, 0.5}, {10, 0.5}});  // same after normalization
  Distribution c({{10, 0.4}, {20, 0.6}});
  EXPECT_EQ(a.ContentHash(), b.ContentHash());
  EXPECT_NE(a.ContentHash(), c.ContentHash());
  // Copies share the content identity.
  Distribution d = a;
  EXPECT_EQ(d.ContentHash(), a.ContentHash());
}

TEST(EcCacheTest, CountsHitsAndMisses) {
  EcCache cache;
  Distribution left = UniformBuckets(100, 1000, 4);
  Distribution right = UniformBuckets(50, 500, 4);
  Distribution memory = UniformBuckets(20, 200, 4);
  int computes = 0;
  auto compute = [&]() {
    ++computes;
    return 42.0;
  };
  EXPECT_EQ(cache.JoinEc(JoinMethod::kGraceHash, false, false, left, right,
                         memory, compute),
            42.0);
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(computes, 1);
  // Same operands — served from cache, compute not called again.
  EXPECT_EQ(cache.JoinEc(JoinMethod::kGraceHash, false, false, left, right,
                         memory, compute),
            42.0);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(computes, 1);
  // Different method or flags — distinct entries.
  cache.JoinEc(JoinMethod::kNestedLoop, false, false, left, right, memory,
               compute);
  cache.JoinEc(JoinMethod::kGraceHash, true, false, left, right, memory,
               compute);
  EXPECT_EQ(cache.stats().misses, 3u);
  EXPECT_EQ(cache.size(), 3u);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().lookups(), 0u);
}

TEST(EcCacheTest, FixedSizeAndSortVariants) {
  EcCache cache;
  Distribution memory = UniformBuckets(20, 200, 4);
  int computes = 0;
  auto compute = [&]() {
    ++computes;
    return 7.0;
  };
  cache.JoinEcFixedSizes(JoinMethod::kSortMerge, false, false, 1000, 400,
                         memory, compute);
  cache.JoinEcFixedSizes(JoinMethod::kSortMerge, false, false, 1000, 400,
                         memory, compute);
  EXPECT_EQ(computes, 1);
  // A different page count is a different key.
  cache.JoinEcFixedSizes(JoinMethod::kSortMerge, false, false, 1000, 401,
                         memory, compute);
  EXPECT_EQ(computes, 2);
  cache.SortEcFixedSize(1000, memory, compute);
  cache.SortEcFixedSize(1000, memory, compute);
  EXPECT_EQ(computes, 3);
  Distribution pages = UniformBuckets(100, 1000, 3);
  cache.SortEc(pages, memory, compute);
  cache.SortEc(pages, memory, compute);
  EXPECT_EQ(computes, 4);
  EXPECT_EQ(cache.stats().hits, 3u);
}

TEST(EcCacheTest, AlgorithmDCachedMatchesUncachedBitIdentical) {
  CostModel model;
  Distribution memory = UniformBuckets(50, 2000, 5);
  for (uint64_t seed : {11u, 12u, 13u}) {
    Workload w = MakeWorkload(seed, 5);
    OptimizerOptions plain;
    OptimizeResult uncached =
        OptimizeAlgorithmD(w.query, w.catalog, model, memory, plain);

    EcCache cache;
    OptimizerOptions with_cache;
    with_cache.ec_cache = &cache;
    OptimizeResult cached =
        OptimizeAlgorithmD(w.query, w.catalog, model, memory, with_cache);

    EXPECT_EQ(cached.objective, uncached.objective);  // bit-identical
    EXPECT_TRUE(PlanEquals(cached.plan, uncached.plan));
    EXPECT_EQ(cached.candidates_considered, uncached.candidates_considered);
    // The cache did real work: some candidates repeated identical EC
    // evaluations, so fewer formula invocations ran.
    EXPECT_GT(cache.stats().hits, 0u);
    EXPECT_LT(cached.cost_evaluations, uncached.cost_evaluations);

    // A second run against the warm cache is all hits, no new entries.
    size_t entries = cache.size();
    size_t misses = cache.stats().misses;
    OptimizeResult warm =
        OptimizeAlgorithmD(w.query, w.catalog, model, memory, with_cache);
    EXPECT_EQ(warm.objective, uncached.objective);
    EXPECT_EQ(cache.size(), entries);
    EXPECT_EQ(cache.stats().misses, misses);
    EXPECT_EQ(warm.cost_evaluations, 0u);
  }
}

TEST(EcCacheTest, AlgorithmACachedScoringPicksSamePlan) {
  CostModel model;
  Distribution memory = UniformBuckets(50, 2000, 6);
  Workload w = MakeWorkload(21, 5);
  OptimizerOptions plain;
  OptimizeResult uncached =
      OptimizeAlgorithmA(w.query, w.catalog, model, memory, plain);
  EcCache cache;
  OptimizerOptions with_cache;
  with_cache.ec_cache = &cache;
  OptimizeResult cached =
      OptimizeAlgorithmA(w.query, w.catalog, model, memory, with_cache);
  EXPECT_TRUE(PlanEquals(cached.plan, uncached.plan));
  // The cached scoring walk sums per-operator ECs — same value up to FP
  // association order, never bit-identical by contract; the tolerance is
  // the documented one from verify/tolerance.h.
  EXPECT_LE(verify::RelativeError(cached.objective, uncached.objective),
            verify::kSummationReassociationRelTol);
}

TEST(EcCacheTest, CachedPlanScoreMatchesUncachedWalk) {
  CostModel model;
  Distribution memory = UniformBuckets(50, 2000, 6);
  Workload w = MakeWorkload(31, 4);
  OptimizeResult r =
      OptimizeAlgorithmA(w.query, w.catalog, model, memory, {});
  double plain =
      PlanExpectedCostStatic(r.plan, w.query, w.catalog, model, memory);
  EcCache cache;
  double cached = PlanExpectedCostStaticCached(r.plan, w.query, w.catalog,
                                               model, memory, &cache);
  EXPECT_LE(verify::RelativeError(cached, plain),
            verify::kSummationReassociationRelTol);
  // Re-scoring the same plan is served entirely from the cache.
  size_t misses = cache.stats().misses;
  double again = PlanExpectedCostStaticCached(r.plan, w.query, w.catalog,
                                              model, memory, &cache);
  EXPECT_EQ(again, cached);
  EXPECT_EQ(cache.stats().misses, misses);
}

}  // namespace
}  // namespace lec
