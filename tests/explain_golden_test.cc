// Golden-file tests for ExplainResult rendering, one per strategy family.
//
// EXPLAIN output is the library's human interface: regressions in operator
// descriptions, regime tables, or the provenance line are invisible to
// numeric tests. Each case optimizes a fixed seeded workload, renders the
// diagnostics with the wall-time normalized to zero (the only
// nondeterministic field), and compares byte-for-byte against
// tests/golden/explain_<family>.txt.
//
// Regenerating after an intentional rendering change (see DESIGN.md,
// "Verification"):
//
//   UPDATE_GOLDEN=1 ctest -R ExplainGolden
//
// then review the diff like any other code change.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "dist/simd.h"
#include "optimizer/optimizer.h"
#include "query/generator.h"

namespace lec {
namespace {

std::string GoldenPath(const std::string& name) {
  return std::string(LECOPT_SOURCE_DIR) + "/tests/golden/explain_" + name +
         ".txt";
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

class ExplainGoldenTest : public ::testing::Test {
 protected:
  ExplainGoldenTest() {
    Rng rng(20260729);
    WorkloadOptions wopts;
    wopts.num_tables = 4;
    wopts.shape = JoinGraphShape::kChain;
    wopts.selectivity_spread = 3.0;
    wopts.table_size_spread = 2.0;
    wopts.order_by_probability = 1.0;
    workload_ = GenerateWorkload(wopts, &rng);
    memory_ = Distribution({{64, 0.25}, {512, 0.5}, {4096, 0.25}});
    chain_ = MarkovChain::Drift({64, 512, 4096}, 0.6);
  }

  void CheckGolden(const std::string& name, StrategyId id) {
    OptimizeRequest req;
    req.query = &workload_.query;
    req.catalog = &workload_.catalog;
    req.model = &model_;
    req.memory = &memory_;
    req.chain = &chain_;
    OptimizeResult result = optimizer_.Optimize(id, req);
    PlanDiagnostics diag = ExplainResult(result, workload_.query,
                                         workload_.catalog, model_, memory_);
    // Wall time is the one nondeterministic diagnostic; pin it so the
    // provenance line still renders (with its deterministic counters).
    diag.optimize_seconds = 0;
    std::string rendered = diag.ToString();
    ASSERT_FALSE(rendered.empty());

    std::string path = GoldenPath(name);
    const char* update = std::getenv("UPDATE_GOLDEN");
    if (update != nullptr && std::string(update) == "1") {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      ASSERT_TRUE(out.good()) << "cannot write " << path;
      out << rendered;
      GTEST_SKIP() << "regenerated " << path;
    }
    std::string golden = ReadFile(path);
    ASSERT_FALSE(golden.empty())
        << "missing golden file " << path
        << "; generate it with UPDATE_GOLDEN=1 ctest -R ExplainGolden";
    EXPECT_EQ(rendered, golden)
        << "EXPLAIN rendering drifted from " << path
        << "; if intentional, regenerate with UPDATE_GOLDEN=1 and review "
           "the diff";
  }

  // Goldens pin exact output bits; run at the scalar reference level so
  // the rendering cannot depend on the host CPU's SIMD tier (SIMD drift is
  // the fuzz invariants' concern, not the goldens').
  simd::ScopedLevel scalar_level_{simd::Level::kScalar};
  Workload workload_;
  Distribution memory_ = Distribution::PointMass(0);
  MarkovChain chain_ = MarkovChain::Static({0});
  CostModel model_;
  Optimizer optimizer_;
};

// One case per strategy family: the traditional point-estimate optimizer,
// the candidate-set heuristics (B subsumes A's shape), the LEC DP family,
// the multi-parameter family, and the bushy plan space.
TEST_F(ExplainGoldenTest, Lsc) { CheckGolden("lsc", StrategyId::kLsc); }

TEST_F(ExplainGoldenTest, CandidateFamily) {
  CheckGolden("algorithm_b", StrategyId::kAlgorithmB);
}

TEST_F(ExplainGoldenTest, LecStatic) {
  CheckGolden("lec_static", StrategyId::kLecStatic);
}

TEST_F(ExplainGoldenTest, MultiParam) {
  CheckGolden("algorithm_d", StrategyId::kAlgorithmD);
}

TEST_F(ExplainGoldenTest, Bushy) {
  CheckGolden("bushy_lec", StrategyId::kBushyLec);
}

}  // namespace
}  // namespace lec
