#include "optimizer/randomized.h"

#include <gtest/gtest.h>

#include "cost/expected_cost.h"
#include "dist/builders.h"
#include "optimizer/algorithm_c.h"
#include "query/generator.h"

namespace lec {
namespace {

Distribution TestMemory() {
  return Distribution({{20, 0.25}, {200, 0.25}, {2000, 0.25},
                       {20000, 0.25}});
}

TEST(EvaluateJoinOrderTest, MatchesDpForItsOwnOrder) {
  // Evaluating the DP's chosen permutation must reproduce the DP objective.
  Rng rng(1);
  WorkloadOptions wopts;
  wopts.num_tables = 5;
  wopts.order_by_probability = 1.0;
  Workload w = GenerateWorkload(wopts, &rng);
  CostModel model;
  Distribution memory = TestMemory();
  OptimizeResult dp = OptimizeLecStatic(w.query, w.catalog, model, memory);
  OptimizeResult eval = EvaluateJoinOrder(w.query, w.catalog, model, memory,
                                          JoinOrder(dp.plan));
  EXPECT_NEAR(eval.objective, dp.objective, 1e-9 * dp.objective);
}

TEST(EvaluateJoinOrderTest, ObjectiveMatchesIndependentPlanCosting) {
  Rng rng(2);
  WorkloadOptions wopts;
  wopts.num_tables = 4;
  Workload w = GenerateWorkload(wopts, &rng);
  CostModel model;
  Distribution memory = TestMemory();
  std::vector<QueryPos> order = RandomConnectedOrder(w.query, &rng, {});
  OptimizeResult r =
      EvaluateJoinOrder(w.query, w.catalog, model, memory, order);
  EXPECT_NEAR(r.objective,
              PlanExpectedCostStatic(r.plan, w.query, w.catalog, model,
                                     memory),
              1e-9 * r.objective);
  EXPECT_EQ(JoinOrder(r.plan), order);
}

TEST(EvaluateJoinOrderTest, RejectsCrossProductOrders) {
  // Chain 0-1-2: order {0, 2, 1} puts 0 and 2 together first.
  Catalog catalog;
  catalog.AddTable("A", 100);
  catalog.AddTable("B", 100);
  catalog.AddTable("C", 100);
  Query q;
  q.AddTable(0);
  q.AddTable(1);
  q.AddTable(2);
  q.AddPredicate(0, 1, 0.01);
  q.AddPredicate(1, 2, 0.01);
  CostModel model;
  EXPECT_THROW(
      EvaluateJoinOrder(q, catalog, model, TestMemory(), {0, 2, 1}),
      std::invalid_argument);
  OptimizerOptions allow;
  allow.avoid_cross_products = false;
  EXPECT_NO_THROW(
      EvaluateJoinOrder(q, catalog, model, TestMemory(), {0, 2, 1}, allow));
  EXPECT_THROW(EvaluateJoinOrder(q, catalog, model, TestMemory(), {0, 1}),
               std::invalid_argument);
}

TEST(RandomConnectedOrderTest, AlwaysConnectedPrefixes) {
  Rng rng(3);
  WorkloadOptions wopts;
  wopts.num_tables = 8;
  wopts.shape = JoinGraphShape::kChain;
  Workload w = GenerateWorkload(wopts, &rng);
  OptimizerOptions opts;
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<QueryPos> order =
        RandomConnectedOrder(w.query, &rng, opts);
    ASSERT_EQ(order.size(), 8u);
    TableSet covered = TableSet{1} << order[0];
    for (size_t i = 1; i < order.size(); ++i) {
      EXPECT_FALSE(
          w.query.ConnectingPredicates(covered, order[i]).empty())
          << "disconnected prefix at step " << i;
      covered |= TableSet{1} << order[i];
    }
    EXPECT_EQ(covered, w.query.AllTables());
  }
}

// On DP-tractable sizes the randomized search should find the true LEC
// optimum in nearly every seeded run.
class RandomizedQualityTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomizedQualityTest, FindsDpOptimumOnSmallQueries) {
  Rng rng(GetParam());
  WorkloadOptions wopts;
  wopts.num_tables = static_cast<int>(4 + GetParam() % 3);
  wopts.shape = static_cast<JoinGraphShape>(GetParam() % 5);
  wopts.order_by_probability = 0.5;
  Workload w = GenerateWorkload(wopts, &rng);
  CostModel model;
  Distribution memory = TestMemory();
  OptimizeResult dp = OptimizeLecStatic(w.query, w.catalog, model, memory);
  RandomizedOptions ropts;
  ropts.restarts = 12;
  Rng search_rng(GetParam() * 13 + 1);
  OptimizeResult rnd = OptimizeRandomizedLec(w.query, w.catalog, model,
                                             memory, &search_rng, ropts);
  // Never better than the optimum; with this budget, also never worse.
  EXPECT_GE(rnd.objective, dp.objective * (1 - 1e-9));
  EXPECT_NEAR(rnd.objective, dp.objective, 1e-6 * dp.objective);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomizedQualityTest,
                         ::testing::Range<uint64_t>(800, 815));

TEST(RandomizedTest, ScalesBeyondDpComfort) {
  // 14-way chain: 2^14 DP states are still feasible but the randomized
  // search must return a valid connected plan quickly.
  Rng rng(9);
  WorkloadOptions wopts;
  wopts.num_tables = 14;
  wopts.shape = JoinGraphShape::kChain;
  Workload w = GenerateWorkload(wopts, &rng);
  CostModel model;
  Distribution memory = TestMemory();
  RandomizedOptions ropts;
  ropts.restarts = 3;
  Rng search_rng(10);
  OptimizeResult r = OptimizeRandomizedLec(w.query, w.catalog, model,
                                           memory, &search_rng, ropts);
  EXPECT_TRUE(r.plan != nullptr);
  EXPECT_EQ(r.plan->tables, w.query.AllTables());
  EXPECT_TRUE(std::isfinite(r.objective));
  EXPECT_NEAR(r.objective,
              PlanExpectedCostStatic(r.plan, w.query, w.catalog, model,
                                     memory),
              1e-9 * r.objective);
}

TEST(RandomizedTest, DeterministicGivenRngSeed) {
  Rng rng(5);
  WorkloadOptions wopts;
  wopts.num_tables = 6;
  Workload w = GenerateWorkload(wopts, &rng);
  CostModel model;
  Distribution memory = TestMemory();
  Rng s1(77), s2(77);
  OptimizeResult r1 =
      OptimizeRandomizedLec(w.query, w.catalog, model, memory, &s1);
  OptimizeResult r2 =
      OptimizeRandomizedLec(w.query, w.catalog, model, memory, &s2);
  EXPECT_DOUBLE_EQ(r1.objective, r2.objective);
  EXPECT_TRUE(PlanEquals(r1.plan, r2.plan));
}

}  // namespace
}  // namespace lec
