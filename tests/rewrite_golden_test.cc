// Golden-file tests for EXPLAIN rendering of rewritten plans.
//
// One snapshot per standard rewrite pass, each produced by a single-pass
// PassManager over the same structure-rich workload (parallel edges,
// local filters, a disconnected join graph), plus one for the facade
// running the full standard pipeline. The goldens pin the "rewritten by:"
// provenance line together with the rest of the diagnostics — the plan
// table is rendered against the REWRITTEN query/catalog, so these also
// lock down how filtered twin tables and derived edges surface to a
// human reading EXPLAIN output.
//
// Regenerating after an intentional rendering change:
//
//   UPDATE_GOLDEN=1 ctest -R RewriteGolden
//
// then review the diff like any other code change.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "dist/simd.h"
#include "optimizer/optimizer.h"
#include "query/generator.h"
#include "rewrite/rewrite.h"

namespace lec {
namespace {

std::string GoldenPath(const std::string& name) {
  return std::string(LECOPT_SOURCE_DIR) + "/tests/golden/explain_rewrite_" +
         name + ".txt";
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

class RewriteGoldenTest : public ::testing::Test {
 protected:
  RewriteGoldenTest() {
    Rng rng(20260729);
    WorkloadOptions wopts;
    wopts.num_tables = 4;
    wopts.shape = JoinGraphShape::kChain;
    wopts.selectivity_spread = 3.0;
    wopts.table_size_spread = 2.0;
    // Give every pass something to do: parallel edges for the redundant
    // merge, filters for push-down, two components for cross-product
    // avoidance (and a relabeling-worthy structure for canonicalize).
    wopts.redundant_edge_probability = 1.0;
    wopts.filter_probability = 1.0;
    wopts.num_components = 2;
    workload_ = GenerateWorkload(wopts, &rng);
    memory_ = Distribution({{64, 0.25}, {512, 0.5}, {4096, 0.25}});
  }

  void CheckGolden(const std::string& name, const std::string& rendered) {
    ASSERT_FALSE(rendered.empty());
    std::string path = GoldenPath(name);
    const char* update = std::getenv("UPDATE_GOLDEN");
    if (update != nullptr && std::string(update) == "1") {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      ASSERT_TRUE(out.good()) << "cannot write " << path;
      out << rendered;
      GTEST_SKIP() << "regenerated " << path;
    }
    std::string golden = ReadFile(path);
    ASSERT_FALSE(golden.empty())
        << "missing golden file " << path
        << "; generate it with UPDATE_GOLDEN=1 ctest -R RewriteGolden";
    EXPECT_EQ(rendered, golden)
        << "EXPLAIN rendering drifted from " << path
        << "; if intentional, regenerate with UPDATE_GOLDEN=1 and review "
           "the diff";
  }

  /// Runs `manager` over the raw workload, optimizes the REWRITTEN query,
  /// and renders diagnostics exactly as the facade would: the rewrite
  /// outcome stamped on the result, the rewritten query/catalog passed to
  /// ExplainResult, wall time pinned to zero.
  std::string RenderVia(const rewrite::PassManager& manager) {
    auto outcome = std::make_shared<rewrite::RewriteOutcome>(
        manager.Run(workload_.query, workload_.catalog));
    OptimizeRequest req;
    req.query = &outcome->query;
    req.catalog = &outcome->catalog;
    req.model = &model_;
    req.memory = &memory_;
    OptimizeResult result = optimizer_.Optimize(StrategyId::kLecStatic, req);
    result.rewrite = outcome;
    PlanDiagnostics diag = ExplainResult(result, outcome->query,
                                         outcome->catalog, model_, memory_);
    diag.optimize_seconds = 0;
    return diag.ToString();
  }

  // Goldens pin exact output bits; run at the scalar reference level so
  // the rendering cannot depend on the host CPU's SIMD tier.
  simd::ScopedLevel scalar_level_{simd::Level::kScalar};
  Workload workload_;
  Distribution memory_ = Distribution::PointMass(0);
  CostModel model_;
  Optimizer optimizer_;
};

TEST_F(RewriteGoldenTest, SelectionPushdown) {
  rewrite::PassManager m;
  m.Add(rewrite::MakeSelectionPushdownPass());
  std::string rendered = RenderVia(m);
  EXPECT_NE(rendered.find("rewritten by: selection_pushdown x1"),
            std::string::npos)
      << rendered;
  CheckGolden("selection_pushdown", rendered);
}

TEST_F(RewriteGoldenTest, RedundantPredicates) {
  rewrite::PassManager m;
  m.Add(rewrite::MakeRedundantPredicatePass());
  std::string rendered = RenderVia(m);
  EXPECT_NE(rendered.find("rewritten by: redundant_predicates x1"),
            std::string::npos)
      << rendered;
  CheckGolden("redundant_predicates", rendered);
}

TEST_F(RewriteGoldenTest, CrossProductAvoidance) {
  rewrite::PassManager m;
  m.Add(rewrite::MakeCrossProductAvoidancePass());
  std::string rendered = RenderVia(m);
  EXPECT_NE(rendered.find("rewritten by: cross_product_avoidance x1"),
            std::string::npos)
      << rendered;
  CheckGolden("cross_product_avoidance", rendered);
}

TEST_F(RewriteGoldenTest, Canonicalize) {
  rewrite::PassManager m;
  m.Add(rewrite::MakeCanonicalizationPass());
  // Canonicalization may be a no-op when the incoming labels already sort
  // canonically; the golden pins whichever this workload renders.
  CheckGolden("canonicalize", RenderVia(m));
}

TEST_F(RewriteGoldenTest, StandardPipelineViaFacade) {
  // The end-to-end path: the facade rewrites, optimizes the rewritten
  // query, and stamps the outcome — EXPLAIN shows every pass that fired.
  OptimizeRequest req;
  req.query = &workload_.query;
  req.catalog = &workload_.catalog;
  req.model = &model_;
  req.memory = &memory_;
  req.options.rewrite_mode = RewriteMode::kOn;
  OptimizeResult result = optimizer_.Optimize(StrategyId::kLecStatic, req);
  ASSERT_NE(result.rewrite, nullptr);
  PlanDiagnostics diag =
      ExplainResult(result, result.rewrite->query, result.rewrite->catalog,
                    model_, memory_);
  diag.optimize_seconds = 0;
  std::string rendered = diag.ToString();
  EXPECT_NE(rendered.find("rewritten by:"), std::string::npos) << rendered;
  CheckGolden("standard_pipeline", rendered);
}

}  // namespace
}  // namespace lec
