#include "cost/explain.h"

#include <gtest/gtest.h>

#include "cost/expected_cost.h"
#include "optimizer/algorithm_c.h"
#include "optimizer/optimizer.h"  // ExplainResult

namespace lec {
namespace {

struct Example11Fixture {
  Catalog catalog;
  Query query;
  CostModel model;
  Distribution memory = Distribution::TwoPoint(2000, 0.8, 700, 0.2);

  Example11Fixture() {
    catalog.AddTable("A", 1'000'000);
    catalog.AddTable("B", 400'000);
    query.AddTable(0);
    query.AddTable(1);
    query.AddPredicate(0, 1, 3000.0 / (1e6 * 4e5));
    query.RequireOrder(0);
  }
};

TEST(ExplainTest, TotalMatchesPlanExpectedCost) {
  Example11Fixture f;
  OptimizeResult lec = OptimizeLecStatic(f.query, f.catalog, f.model,
                                         f.memory);
  PlanDiagnostics d =
      ExplainPlan(lec.plan, f.query, f.catalog, f.model, f.memory);
  EXPECT_NEAR(d.total_expected_cost,
              PlanExpectedCostStatic(lec.plan, f.query, f.catalog, f.model,
                                     f.memory),
              1e-9 * d.total_expected_cost);
}

TEST(ExplainTest, RegimeProbabilitiesSumToOne) {
  Example11Fixture f;
  PlanPtr plan1 = MakeJoin(MakeAccess(0, 1e6), MakeAccess(1, 4e5),
                           JoinMethod::kSortMerge, {0}, 0, 3000);
  PlanDiagnostics d =
      ExplainPlan(plan1, f.query, f.catalog, f.model, f.memory);
  for (const OperatorDiagnostics& op : d.operators) {
    double mass = 0;
    for (const CostRegime& r : op.regimes) mass += r.probability;
    EXPECT_NEAR(mass, 1.0, 1e-9) << op.description;
  }
}

TEST(ExplainTest, SortMergeJoinShowsBothRegimes) {
  Example11Fixture f;
  PlanPtr plan1 = MakeJoin(MakeAccess(0, 1e6), MakeAccess(1, 4e5),
                           JoinMethod::kSortMerge, {0}, 0, 3000);
  PlanDiagnostics d =
      ExplainPlan(plan1, f.query, f.catalog, f.model, f.memory);
  // Operators bottom-up: scan A, scan B, SM join.
  ASSERT_EQ(d.operators.size(), 3u);
  const OperatorDiagnostics& join = d.operators.back();
  // Memory straddles sqrt(1e6) = 1000: two regimes with mass 0.2 / 0.8.
  ASSERT_EQ(join.regimes.size(), 2u);
  EXPECT_DOUBLE_EQ(join.regimes[0].probability, 0.2);
  EXPECT_DOUBLE_EQ(join.regimes[0].cost, 4 * 1.4e6);
  EXPECT_DOUBLE_EQ(join.regimes[1].probability, 0.8);
  EXPECT_DOUBLE_EQ(join.regimes[1].cost, 2 * 1.4e6);
  EXPECT_GT(join.cost_stddev, 0);
  // The expected cost is the regime mixture.
  EXPECT_DOUBLE_EQ(join.expected_cost, 0.2 * 5.6e6 + 0.8 * 2.8e6);
}

TEST(ExplainTest, HedgedPlanHasZeroSpreadHere) {
  // The LEC plan's Grace hash sits entirely in the 2-pass regime under
  // this distribution — EXPLAIN shows why it was chosen.
  Example11Fixture f;
  OptimizeResult lec = OptimizeLecStatic(f.query, f.catalog, f.model,
                                         f.memory);
  PlanDiagnostics d =
      ExplainPlan(lec.plan, f.query, f.catalog, f.model, f.memory);
  for (const OperatorDiagnostics& op : d.operators) {
    EXPECT_NEAR(op.cost_stddev, 0, 1e-9) << op.description;
  }
}

TEST(ExplainTest, RenderingMentionsEveryOperatorAndTotal) {
  Example11Fixture f;
  OptimizeResult lec = OptimizeLecStatic(f.query, f.catalog, f.model,
                                         f.memory);
  std::string text =
      ExplainPlan(lec.plan, f.query, f.catalog, f.model, f.memory)
          .ToString();
  EXPECT_NE(text.find("Scan(A"), std::string::npos);
  EXPECT_NE(text.find("Scan(B"), std::string::npos);
  EXPECT_NE(text.find("GHJoin"), std::string::npos);
  EXPECT_NE(text.find("Sort"), std::string::npos);
  EXPECT_NE(text.find("total EC"), std::string::npos);
  // Plain ExplainPlan has no optimizer provenance to report.
  EXPECT_EQ(text.find("optimized in"), std::string::npos);
}

TEST(ExplainTest, ExplainResultCarriesOptimizerProvenance) {
  Example11Fixture f;
  OptimizeResult lec = OptimizeLecStatic(f.query, f.catalog, f.model,
                                         f.memory);
  PlanDiagnostics d =
      ExplainResult(lec, f.query, f.catalog, f.model, f.memory);
  EXPECT_EQ(d.optimize_seconds, lec.elapsed_seconds);
  // GE, not GT: a coarse steady_clock may legitimately measure 0 on a
  // 3-table optimization.
  EXPECT_GE(d.optimize_seconds, 0.0);
  EXPECT_EQ(d.candidates_considered, lec.candidates_considered);
  EXPECT_EQ(d.cost_evaluations, lec.cost_evaluations);
  std::string text = d.ToString();
  EXPECT_NE(text.find("optimized in"), std::string::npos);
  EXPECT_NE(text.find("candidates"), std::string::npos);
}

}  // namespace
}  // namespace lec
