// The batch service driver: thread-count-invariant results, correct
// sharding, aggregate counters, and strategy routing through the facade.
#include "service/batch_driver.h"

#include <gtest/gtest.h>

#include "dist/builders.h"
#include "optimizer/algorithm_c.h"
#include "query/generator.h"
#include "verify/tolerance.h"

namespace lec {
namespace {

std::vector<Workload> MakeCorpus(size_t count) {
  std::vector<Workload> corpus;
  Rng rng(7);
  for (size_t i = 0; i < count; ++i) {
    WorkloadOptions wopts;
    wopts.num_tables = 4 + static_cast<int>(i % 2);
    wopts.shape = i % 2 == 0 ? JoinGraphShape::kChain : JoinGraphShape::kStar;
    wopts.order_by_probability = 0.5;
    corpus.push_back(GenerateWorkload(wopts, &rng));
  }
  return corpus;
}

TEST(BatchDriverTest, ObjectivesMatchDirectOptimization) {
  std::vector<Workload> corpus = MakeCorpus(8);
  CostModel model;
  Distribution memory = UniformBuckets(50, 2000, 4);
  BatchOptions opts;
  opts.strategy = StrategyId::kLecStatic;
  opts.num_threads = 2;
  opts.request.model = &model;
  opts.request.memory = &memory;
  BatchReport report = RunBatch(corpus, opts);
  ASSERT_EQ(report.objectives.size(), corpus.size());
  for (size_t i = 0; i < corpus.size(); ++i) {
    OptimizeResult direct = OptimizeLecStatic(corpus[i].query,
                                              corpus[i].catalog, model,
                                              memory);
    EXPECT_EQ(report.objectives[i], direct.objective) << "query " << i;
  }
}

TEST(BatchDriverTest, ThreadCountInvariant) {
  std::vector<Workload> corpus = MakeCorpus(12);
  CostModel model;
  Distribution memory = UniformBuckets(50, 2000, 4);
  BatchOptions opts;
  opts.strategy = StrategyId::kAlgorithmD;
  opts.request.model = &model;
  opts.request.memory = &memory;

  opts.num_threads = 1;
  BatchReport one = RunBatch(corpus, opts);
  for (int threads : {2, 4}) {
    opts.num_threads = threads;
    BatchReport many = RunBatch(corpus, opts);
    EXPECT_EQ(many.objective_sum, one.objective_sum) << threads;
    EXPECT_EQ(many.objectives, one.objectives) << threads;
    EXPECT_EQ(many.queries, corpus.size());
    EXPECT_EQ(many.threads_used, threads);
  }
}

TEST(BatchDriverTest, ShardsCoverEveryQueryOnce) {
  std::vector<Workload> corpus = MakeCorpus(10);
  CostModel model;
  Distribution memory = UniformBuckets(50, 2000, 4);
  BatchOptions opts;
  opts.num_threads = 3;
  opts.request.model = &model;
  opts.request.memory = &memory;
  BatchReport report = RunBatch(corpus, opts);
  ASSERT_EQ(report.queries_per_thread.size(), 3u);
  size_t total = 0;
  for (size_t q : report.queries_per_thread) total += q;
  EXPECT_EQ(total, corpus.size());
  EXPECT_GT(report.wall_seconds, 0.0);
  EXPECT_GT(report.queries_per_sec, 0.0);
  EXPECT_GT(report.cost_evaluations, 0u);
}

TEST(BatchDriverTest, MoreThreadsThanQueriesClamps) {
  std::vector<Workload> corpus = MakeCorpus(2);
  CostModel model;
  Distribution memory = UniformBuckets(50, 2000, 4);
  BatchOptions opts;
  opts.num_threads = 16;
  opts.request.model = &model;
  opts.request.memory = &memory;
  BatchReport report = RunBatch(corpus, opts);
  EXPECT_EQ(report.threads_used, 2);
  EXPECT_EQ(report.queries, 2u);
}

TEST(BatchDriverTest, EcCacheStatsSurface) {
  std::vector<Workload> corpus = MakeCorpus(6);
  CostModel model;
  Distribution memory = UniformBuckets(50, 2000, 4);
  BatchOptions opts;
  opts.strategy = StrategyId::kAlgorithmD;
  opts.num_threads = 2;
  opts.use_ec_cache = true;
  opts.request.model = &model;
  opts.request.memory = &memory;
  BatchReport cached = RunBatch(corpus, opts);
  EXPECT_GT(cached.ec_cache_hits, 0u);
  EXPECT_GT(cached.ec_cache_misses, 0u);

  opts.use_ec_cache = false;
  BatchReport plain = RunBatch(corpus, opts);
  EXPECT_EQ(plain.ec_cache_hits, 0u);
  EXPECT_EQ(plain.ec_cache_misses, 0u);
  // Identical objectives either way; the cache only removes duplicate work.
  EXPECT_EQ(plain.objectives, cached.objectives);
  EXPECT_GT(plain.cost_evaluations, cached.cost_evaluations);
}

TEST(BatchDriverTest, AbCachedScoringWithinDocumentedTolerance) {
  // Algorithm A/B cached scoring reassociates the EC summation, so the
  // cache-on/off parity here is the documented relative tolerance from
  // verify/tolerance.h — never exact equality (that expectation is a
  // latent flake; Algorithm D's memoization-only guarantee stays bit-exact
  // in EcCacheStatsSurface above).
  std::vector<Workload> corpus = MakeCorpus(6);
  CostModel model;
  Distribution memory = UniformBuckets(50, 2000, 4);
  BatchOptions opts;
  opts.strategy = StrategyId::kAlgorithmA;
  opts.num_threads = 2;
  opts.request.model = &model;
  opts.request.memory = &memory;
  opts.use_ec_cache = false;
  BatchReport plain = RunBatch(corpus, opts);
  opts.use_ec_cache = true;
  BatchReport cached = RunBatch(corpus, opts);
  ASSERT_EQ(plain.objectives.size(), cached.objectives.size());
  for (size_t i = 0; i < plain.objectives.size(); ++i) {
    EXPECT_LE(
        verify::RelativeError(plain.objectives[i], cached.objectives[i]),
        verify::kSummationReassociationRelTol)
        << "query " << i;
  }
  EXPECT_GT(cached.ec_cache_hits, 0u);
}

TEST(BatchDriverTest, RecordPlansIsThreadInvariant) {
  std::vector<Workload> corpus = MakeCorpus(9);
  CostModel model;
  Distribution memory = UniformBuckets(50, 2000, 4);
  BatchOptions opts;
  opts.strategy = StrategyId::kLecStatic;
  opts.record_plans = true;
  opts.request.model = &model;
  opts.request.memory = &memory;
  opts.num_threads = 1;
  BatchReport one = RunBatch(corpus, opts);
  opts.num_threads = 3;
  BatchReport three = RunBatch(corpus, opts);
  ASSERT_EQ(one.plans.size(), corpus.size());
  ASSERT_EQ(three.plans.size(), corpus.size());
  for (size_t i = 0; i < corpus.size(); ++i) {
    ASSERT_NE(one.plans[i], nullptr) << "query " << i;
    EXPECT_TRUE(PlanEquals(one.plans[i], three.plans[i])) << "query " << i;
  }
  // Off by default: no plans retained.
  opts.record_plans = false;
  BatchReport off = RunBatch(corpus, opts);
  EXPECT_TRUE(off.plans.empty());
}

TEST(BatchDriverTest, EmptyWorkload) {
  CostModel model;
  Distribution memory = UniformBuckets(50, 2000, 4);
  BatchOptions opts;
  opts.request.model = &model;
  opts.request.memory = &memory;
  BatchReport report = RunBatch({}, opts);
  EXPECT_EQ(report.queries, 0u);
  EXPECT_EQ(report.objective_sum, 0.0);
}

}  // namespace
}  // namespace lec
