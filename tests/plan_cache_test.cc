// The PlanCache contract: a hit is bit-identical to recompute (except
// elapsed_seconds), signatures discriminate exactly the inputs results
// depend on, eviction respects the cap, snapshots round-trip, and the
// cache is shareable across the batch driver's workers without changing
// objectives or plans.
#include "service/plan_cache.h"

#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

#include "cost/ec_cache.h"
#include "query/generator.h"
#include "service/batch_driver.h"
#include "util/rng.h"

namespace lec {
namespace {

uint64_t Bits(double v) {
  uint64_t b;
  std::memcpy(&b, &v, sizeof(b));
  return b;
}

Workload MakeWorkload(uint64_t seed, int num_tables = 5) {
  Rng rng(seed);
  WorkloadOptions wopts;
  wopts.num_tables = num_tables;
  wopts.shape = JoinGraphShape::kChain;
  wopts.selectivity_spread = 3.0;
  wopts.table_size_spread = 2.0;
  return GenerateWorkload(wopts, &rng);
}

class PlanCacheTest : public ::testing::Test {
 protected:
  PlanCacheTest() : memory_({{64, 0.25}, {512, 0.5}, {4096, 0.25}}) {}

  OptimizeRequest RequestFor(const Workload& w, PlanCache* cache) {
    OptimizeRequest req;
    req.query = &w.query;
    req.catalog = &w.catalog;
    req.model = &model_;
    req.memory = &memory_;
    req.options.plan_cache = cache;
    return req;
  }

  CostModel model_;
  Distribution memory_;
  Optimizer optimizer_;
};

TEST_F(PlanCacheTest, HitIsBitIdenticalToRecompute) {
  Workload w = MakeWorkload(1);
  PlanCache cache;
  for (StrategyId id :
       {StrategyId::kLsc, StrategyId::kLecStatic, StrategyId::kAlgorithmD,
        StrategyId::kRandomized}) {
    OptimizeRequest cached = RequestFor(w, &cache);
    OptimizeRequest plain = RequestFor(w, nullptr);
    OptimizeResult miss = optimizer_.Optimize(id, cached);
    OptimizeResult hit = optimizer_.Optimize(id, cached);
    OptimizeResult recompute = optimizer_.Optimize(id, plain);
    EXPECT_EQ(Bits(hit.objective), Bits(recompute.objective));
    EXPECT_EQ(Bits(miss.objective), Bits(recompute.objective));
    EXPECT_EQ(hit.candidates_considered, recompute.candidates_considered);
    EXPECT_EQ(hit.cost_evaluations, recompute.cost_evaluations);
    EXPECT_EQ(hit.candidates_by_phase, recompute.candidates_by_phase);
    EXPECT_TRUE(PlanEquals(hit.plan, recompute.plan));
  }
  PlanCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits, 4u);
  EXPECT_EQ(stats.misses, 4u);
  EXPECT_EQ(stats.insertions, 4u);
  EXPECT_EQ(cache.size(), 4u);
}

TEST_F(PlanCacheTest, SignatureDiscriminatesResultAffectingInputs) {
  Workload w = MakeWorkload(2);
  OptimizeRequest req = RequestFor(w, nullptr);
  QuerySignature base =
      QuerySignature::Compute(StrategyId::kLecStatic, req);

  // Strategy.
  EXPECT_NE(QuerySignature::Compute(StrategyId::kLsc, req).canonical,
            base.canonical);

  // Memory distribution.
  Distribution other_memory({{64, 0.5}, {4096, 0.5}});
  OptimizeRequest mem_req = req;
  mem_req.memory = &other_memory;
  EXPECT_NE(QuerySignature::Compute(StrategyId::kLecStatic, mem_req).canonical,
            base.canonical);

  // Result-affecting optimizer options.
  OptimizeRequest opt_req = req;
  opt_req.options.use_dist_kernels = !req.options.use_dist_kernels;
  EXPECT_NE(QuerySignature::Compute(StrategyId::kLecStatic, opt_req).canonical,
            base.canonical);

  // EC cache *presence* splits Algorithm A/B (their cached scoring
  // reassociates sums) but NOT the bit-transparent strategies — the batch
  // driver always attaches per-worker EC caches, and splitting on them
  // everywhere would halve the hit rate for no correctness gain.
  EcCache ec;
  OptimizeRequest ec_req = req;
  ec_req.options.ec_cache = &ec;
  EXPECT_EQ(QuerySignature::Compute(StrategyId::kLecStatic, ec_req).canonical,
            base.canonical);
  EXPECT_EQ(QuerySignature::Compute(StrategyId::kAlgorithmD, ec_req).canonical,
            QuerySignature::Compute(StrategyId::kAlgorithmD, req).canonical);
  EXPECT_NE(QuerySignature::Compute(StrategyId::kAlgorithmA, ec_req).canonical,
            QuerySignature::Compute(StrategyId::kAlgorithmA, req).canonical);
  EXPECT_NE(QuerySignature::Compute(StrategyId::kAlgorithmB, ec_req).canonical,
            QuerySignature::Compute(StrategyId::kAlgorithmB, req).canonical);

  // Cost-model knobs.
  CostModelOptions discount;
  discount.sorted_input_discount = true;
  CostModel discount_model(discount);
  OptimizeRequest model_req = req;
  model_req.model = &discount_model;
  EXPECT_NE(
      QuerySignature::Compute(StrategyId::kLecStatic, model_req).canonical,
      base.canonical);

  // Strategy knobs only where consumed: top_c changes algorithm_b, not
  // lec_static; the randomized seed changes randomized only.
  OptimizeRequest knob_req = req;
  knob_req.top_c = 7;
  knob_req.seed = 12345;
  EXPECT_EQ(
      QuerySignature::Compute(StrategyId::kLecStatic, knob_req).canonical,
      base.canonical);
  EXPECT_NE(
      QuerySignature::Compute(StrategyId::kAlgorithmB, knob_req).canonical,
      QuerySignature::Compute(StrategyId::kAlgorithmB, req).canonical);
  EXPECT_NE(
      QuerySignature::Compute(StrategyId::kRandomized, knob_req).canonical,
      QuerySignature::Compute(StrategyId::kRandomized, req).canonical);
}

TEST_F(PlanCacheTest, PredicateEndpointOrderIsNormalized) {
  // The same join graph entered with swapped predicate endpoints must
  // share a cache entry: a binary equi-join predicate is symmetric.
  Catalog catalog;
  catalog.AddTable("a", 1000);
  catalog.AddTable("b", 2000);
  catalog.AddTable("c", 4000);
  Query q1, q2;
  for (TableId t = 0; t < 3; ++t) {
    q1.AddTable(t);
    q2.AddTable(t);
  }
  q1.AddPredicate(0, 1, 1e-4);
  q1.AddPredicate(1, 2, 1e-5);
  q2.AddPredicate(1, 0, 1e-4);  // endpoints swapped
  q2.AddPredicate(2, 1, 1e-5);
  Workload w1{catalog, q1}, w2{catalog, q2};
  QuerySignature s1 = QuerySignature::Compute(StrategyId::kLecStatic,
                                              RequestFor(w1, nullptr));
  QuerySignature s2 = QuerySignature::Compute(StrategyId::kLecStatic,
                                              RequestFor(w2, nullptr));
  EXPECT_EQ(s1.canonical, s2.canonical);

  // And serving across the two phrasings is bit-identical.
  PlanCache cache;
  OptimizeRequest r1 = RequestFor(w1, &cache);
  OptimizeRequest r2 = RequestFor(w2, &cache);
  OptimizeResult first = optimizer_.Optimize(StrategyId::kLecStatic, r1);
  OptimizeResult second = optimizer_.Optimize(StrategyId::kLecStatic, r2);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(Bits(first.objective), Bits(second.objective));
  EXPECT_TRUE(PlanEquals(first.plan, second.plan));
}

TEST_F(PlanCacheTest, EvictsLruUnderEntryCap) {
  PlanCache::Options copts;
  copts.max_entries = 3;
  copts.shards = 1;  // single shard so LRU order is global
  PlanCache cache(copts);
  std::vector<Workload> workloads;
  for (uint64_t seed = 0; seed < 5; ++seed) {
    workloads.push_back(MakeWorkload(100 + seed));
  }
  for (const Workload& w : workloads) {
    OptimizeRequest req = RequestFor(w, &cache);
    optimizer_.Optimize(StrategyId::kLecStatic, req);
  }
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.stats().evictions, 2u);

  // The two oldest were evicted; the three newest still hit.
  for (size_t i = 0; i < workloads.size(); ++i) {
    QuerySignature sig = QuerySignature::Compute(
        StrategyId::kLecStatic, RequestFor(workloads[i], nullptr));
    EXPECT_EQ(cache.Lookup(sig).has_value(), i >= 2) << "workload " << i;
  }

  // A hit refreshes recency: touch the now-oldest live entry, insert a new
  // one, and the refreshed entry must survive while its neighbor goes.
  QuerySignature refreshed = QuerySignature::Compute(
      StrategyId::kLecStatic, RequestFor(workloads[2], nullptr));
  ASSERT_TRUE(cache.Lookup(refreshed).has_value());
  optimizer_.Optimize(StrategyId::kLecStatic,
                      RequestFor(MakeWorkload(200), &cache));
  EXPECT_TRUE(cache.Lookup(refreshed).has_value());
  QuerySignature gone = QuerySignature::Compute(
      StrategyId::kLecStatic, RequestFor(workloads[3], nullptr));
  EXPECT_FALSE(cache.Lookup(gone).has_value());
}

TEST_F(PlanCacheTest, InvalidateAllLazyAblationDropsOnTouch) {
  // eager_invalidate_sweep = false is the pre-fix lazy behavior, kept as
  // an ablation: stale entries keep their slots until touched. This test
  // pins the lazy path's contract — snapshot exclusion and counter
  // consistency on a stale touch.
  PlanCache::Options copts;
  copts.eager_invalidate_sweep = false;
  Workload w = MakeWorkload(3);
  PlanCache cache(copts);
  OptimizeRequest req = RequestFor(w, &cache);
  optimizer_.Optimize(StrategyId::kLecStatic, req);
  QuerySignature sig = QuerySignature::Compute(StrategyId::kLecStatic, req);
  ASSERT_TRUE(cache.Lookup(sig).has_value());
  cache.InvalidateAll();
  // Lazy: the dead entry still occupies its slot until something touches
  // it — but it is excluded from snapshots, and the reported count says
  // so (an operator must not be told a warm restart preserved plans that
  // were just invalidated).
  EXPECT_EQ(cache.size(), 1u);
  size_t saved = 99;
  cache.SaveSnapshot(serde::Encoding::kText, &saved);
  EXPECT_EQ(saved, 0u);
  // The stale touch counts BOTH a stale drop and a miss — exactly one of
  // each — and frees the slot.
  PlanCache::Stats before = cache.stats();
  EXPECT_FALSE(cache.Lookup(sig).has_value());
  PlanCache::Stats after = cache.stats();
  EXPECT_EQ(after.stale, before.stale + 1);
  EXPECT_EQ(after.misses, before.misses + 1);
  EXPECT_EQ(after.hits, before.hits);
  EXPECT_EQ(cache.size(), 0u);
  // The miss repopulates at the current epoch.
  optimizer_.Optimize(StrategyId::kLecStatic, req);
  EXPECT_TRUE(cache.Lookup(sig).has_value());
  saved = 0;
  cache.SaveSnapshot(serde::Encoding::kText, &saved);
  EXPECT_EQ(saved, 1u);
}

TEST_F(PlanCacheTest, InvalidateAllEagerSweepFreesCapacityImmediately) {
  // Regression: with the lazy drop, a cache full of invalidated entries
  // kept squatting the entry cap — fresh inserts after InvalidateAll
  // churned through spurious "evictions" of dead entries. The default
  // eager sweep releases every dead slot inside InvalidateAll itself.
  PlanCache::Options copts;
  copts.max_entries = 3;
  copts.shards = 1;
  PlanCache cache(copts);
  std::vector<Workload> old_gen, new_gen;
  for (uint64_t seed = 0; seed < 3; ++seed) {
    old_gen.push_back(MakeWorkload(700 + seed));
    new_gen.push_back(MakeWorkload(710 + seed));
  }
  for (const Workload& w : old_gen) {
    optimizer_.Optimize(StrategyId::kLecStatic, RequestFor(w, &cache));
  }
  ASSERT_EQ(cache.size(), 3u);
  cache.InvalidateAll();
  EXPECT_EQ(cache.size(), 0u);  // slots released NOW, not on touch
  EXPECT_EQ(cache.stats().stale, 3u);
  EXPECT_EQ(cache.stats().evictions, 0u);
  // A full working set inserted post-invalidation fits without evicting.
  for (const Workload& w : new_gen) {
    optimizer_.Optimize(StrategyId::kLecStatic, RequestFor(w, &cache));
  }
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.stats().evictions, 0u);
  for (const Workload& w : new_gen) {
    EXPECT_TRUE(cache
                    .Lookup(QuerySignature::Compute(StrategyId::kLecStatic,
                                                    RequestFor(w, nullptr)))
                    .has_value());
  }

  // Contrast: the lazy ablation DOES squat the cap — the same sequence
  // pays one eviction per dead entry.
  copts.eager_invalidate_sweep = false;
  PlanCache lazy(copts);
  for (const Workload& w : old_gen) {
    optimizer_.Optimize(StrategyId::kLecStatic, RequestFor(w, &lazy));
  }
  lazy.InvalidateAll();
  EXPECT_EQ(lazy.size(), 3u);  // dead entries still hold their slots
  for (const Workload& w : new_gen) {
    optimizer_.Optimize(StrategyId::kLecStatic, RequestFor(w, &lazy));
  }
  EXPECT_EQ(lazy.stats().evictions, 3u);
}

TEST_F(PlanCacheTest, SnapshotRoundTripServesBitIdenticalResults) {
  PlanCache cache;
  std::vector<Workload> workloads;
  for (uint64_t seed = 0; seed < 4; ++seed) {
    workloads.push_back(MakeWorkload(300 + seed));
  }
  std::vector<OptimizeResult> originals;
  for (const Workload& w : workloads) {
    originals.push_back(optimizer_.Optimize(StrategyId::kLecStatic,
                                            RequestFor(w, &cache)));
  }

  for (serde::Encoding enc :
       {serde::Encoding::kText, serde::Encoding::kBinary}) {
    std::string snapshot = cache.SaveSnapshot(enc);
    PlanCache warmed;
    EXPECT_EQ(warmed.LoadSnapshot(snapshot), workloads.size());
    for (size_t i = 0; i < workloads.size(); ++i) {
      OptimizeResult served = optimizer_.Optimize(
          StrategyId::kLecStatic, RequestFor(workloads[i], &warmed));
      EXPECT_EQ(Bits(served.objective), Bits(originals[i].objective)) << i;
      EXPECT_TRUE(PlanEquals(served.plan, originals[i].plan)) << i;
    }
    EXPECT_EQ(warmed.stats().hits, workloads.size());
    EXPECT_EQ(warmed.stats().misses, 0u);
  }
}

TEST_F(PlanCacheTest, SnapshotBytesAreInsertionOrderIndependent) {
  std::vector<Workload> workloads;
  for (uint64_t seed = 0; seed < 4; ++seed) {
    workloads.push_back(MakeWorkload(400 + seed));
  }
  PlanCache forward, backward;
  for (size_t i = 0; i < workloads.size(); ++i) {
    optimizer_.Optimize(StrategyId::kLecStatic,
                        RequestFor(workloads[i], &forward));
    optimizer_.Optimize(
        StrategyId::kLecStatic,
        RequestFor(workloads[workloads.size() - 1 - i], &backward));
  }
  // elapsed_seconds differs between the two runs; it is the one
  // nondeterministic field, so compare snapshots of reloaded caches whose
  // entries went through the same serializer... simpler: snapshots of the
  // SAME cache saved twice must be identical, and a loaded copy re-saves
  // byte-identically.
  std::string once = forward.SaveSnapshot();
  EXPECT_EQ(forward.SaveSnapshot(), once);
  PlanCache reloaded;
  reloaded.LoadSnapshot(once);
  EXPECT_EQ(reloaded.SaveSnapshot(), once);
}

TEST_F(PlanCacheTest, SnapshotFileRoundTrip) {
  Workload w = MakeWorkload(5);
  PlanCache cache;
  OptimizeResult original =
      optimizer_.Optimize(StrategyId::kAlgorithmD, RequestFor(w, &cache));
  std::string path = ::testing::TempDir() + "/plan_cache_snapshot_test.bin";
  cache.SaveSnapshotFile(path, serde::Encoding::kBinary);
  PlanCache warmed;
  EXPECT_EQ(warmed.LoadSnapshotFile(path), 1u);
  OptimizeResult served =
      optimizer_.Optimize(StrategyId::kAlgorithmD, RequestFor(w, &warmed));
  EXPECT_EQ(Bits(served.objective), Bits(original.objective));
  EXPECT_TRUE(PlanEquals(served.plan, original.plan));
}

TEST_F(PlanCacheTest, CorruptSnapshotThrows) {
  Workload w = MakeWorkload(6);
  PlanCache cache;
  optimizer_.Optimize(StrategyId::kLecStatic, RequestFor(w, &cache));
  std::string snapshot = cache.SaveSnapshot();
  EXPECT_THROW(PlanCache().LoadSnapshot(snapshot.substr(0, snapshot.size() / 2)),
               serde::SerdeError);
  EXPECT_THROW(PlanCache().LoadSnapshot("lecser text 999 \nplan_cache_snapshot "),
               serde::SerdeError);
  EXPECT_THROW(PlanCache().LoadSnapshot("not a snapshot at all"),
               serde::SerdeError);
}

TEST_F(PlanCacheTest, MissingSnapshotFileThrows) {
  PlanCache cache;
  EXPECT_THROW(cache.LoadSnapshotFile("/nonexistent/dir/snap.lec"),
               std::runtime_error);
}

TEST_F(PlanCacheTest, SharedAcrossBatchWorkersKeepsThreadInvariance) {
  std::vector<Workload> corpus;
  for (uint64_t seed = 0; seed < 6; ++seed) {
    // Duplicates on purpose: repeated queries are the cache's whole point.
    corpus.push_back(MakeWorkload(500 + seed % 3));
  }

  BatchOptions bopts;
  bopts.strategy = StrategyId::kLecStatic;
  bopts.record_plans = true;
  bopts.request.model = &model_;
  bopts.request.memory = &memory_;

  bopts.num_threads = 1;
  BatchReport plain = RunBatch(corpus, bopts);

  PlanCache cache;
  bopts.request.options.plan_cache = &cache;
  BatchReport cached_one = RunBatch(corpus, bopts);
  bopts.num_threads = 4;
  BatchReport cached_four = RunBatch(corpus, bopts);

  EXPECT_EQ(plain.objectives, cached_one.objectives);
  EXPECT_EQ(plain.objectives, cached_four.objectives);
  for (size_t i = 0; i < plain.plans.size(); ++i) {
    EXPECT_TRUE(PlanEquals(plain.plans[i], cached_one.plans[i])) << i;
    EXPECT_TRUE(PlanEquals(plain.plans[i], cached_four.plans[i])) << i;
  }
  // 3 distinct workloads were optimized at most a handful of times across
  // both cached runs; the rest were hits.
  EXPECT_GE(cache.stats().hits, 6u);
  EXPECT_EQ(cache.size(), 3u);
}

TEST_F(PlanCacheTest, ConcurrentHammerStaysConsistent) {
  PlanCache::Options copts;
  copts.max_entries = 8;  // small, to force eviction races
  copts.shards = 4;
  PlanCache cache(copts);
  std::vector<Workload> workloads;
  std::vector<QuerySignature> sigs;
  std::vector<OptimizeResult> expected;
  for (uint64_t seed = 0; seed < 12; ++seed) {
    workloads.push_back(MakeWorkload(600 + seed, 4));
    OptimizeRequest req = RequestFor(workloads.back(), nullptr);
    sigs.push_back(QuerySignature::Compute(StrategyId::kLecStatic, req));
    expected.push_back(optimizer_.Optimize(StrategyId::kLecStatic, req));
  }

  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(static_cast<uint64_t>(t) + 1);
      for (int i = 0; i < 500; ++i) {
        size_t k = static_cast<size_t>(rng.UniformInt(0, 11));
        if (auto hit = cache.Lookup(sigs[k])) {
          // Any served value must be the right value, bit for bit.
          ASSERT_EQ(Bits(hit->objective), Bits(expected[k].objective));
        } else {
          cache.Insert(sigs[k], expected[k]);
        }
        if (i % 97 == 0) cache.InvalidateAll();
      }
    });
  }
  for (std::thread& t : threads) t.join();

  PlanCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.lookups(), 2000u);
  EXPECT_LE(cache.size(), 8u);
}

TEST_F(PlanCacheTest, InvalidateDistributionDropsExactlyConsumingEntries) {
  Workload w1 = MakeWorkload(800);
  Workload w2 = MakeWorkload(801);
  uint64_t w1_hash = w1.catalog.table(0).SizeDistribution().ContentHash();
  uint64_t w2_hash = w2.catalog.table(0).SizeDistribution().ContentHash();
  ASSERT_NE(w1_hash, w2_hash);  // independent seeds, distinct stats

  PlanCache cache;
  optimizer_.Optimize(StrategyId::kLecStatic, RequestFor(w1, &cache));
  optimizer_.Optimize(StrategyId::kLecStatic, RequestFor(w2, &cache));
  QuerySignature s1 =
      QuerySignature::Compute(StrategyId::kLecStatic, RequestFor(w1, nullptr));
  QuerySignature s2 =
      QuerySignature::Compute(StrategyId::kLecStatic, RequestFor(w2, nullptr));

  // Invalidating a distribution only w1's plan consumed drops w1's entry
  // and ONLY w1's entry.
  EXPECT_EQ(cache.InvalidateDistribution(w1_hash), 1u);
  EXPECT_FALSE(cache.Lookup(s1).has_value());
  EXPECT_TRUE(cache.Lookup(s2).has_value());
  EXPECT_EQ(cache.stats().invalidated, 1u);
  EXPECT_EQ(cache.size(), 1u);

  // Idempotent: the reverse-index entry went with the cache entry.
  EXPECT_EQ(cache.InvalidateDistribution(w1_hash), 0u);

  // The memory distribution is an input every cached plan consumed:
  // invalidating its hash drops everything left.
  EXPECT_EQ(cache.InvalidateDistribution(memory_.ContentHash()), 1u);
  EXPECT_FALSE(cache.Lookup(s2).has_value());
  EXPECT_EQ(cache.stats().invalidated, 2u);
  EXPECT_EQ(cache.size(), 0u);
}

TEST_F(PlanCacheTest, EvictionUnlinksReverseIndex) {
  PlanCache::Options copts;
  copts.max_entries = 1;
  copts.shards = 1;
  PlanCache cache(copts);
  Workload w1 = MakeWorkload(810);
  Workload w2 = MakeWorkload(811);
  uint64_t w1_hash = w1.catalog.table(0).SizeDistribution().ContentHash();
  uint64_t w2_hash = w2.catalog.table(0).SizeDistribution().ContentHash();
  ASSERT_NE(w1_hash, w2_hash);

  optimizer_.Optimize(StrategyId::kLecStatic, RequestFor(w1, &cache));
  optimizer_.Optimize(StrategyId::kLecStatic, RequestFor(w2, &cache));
  ASSERT_EQ(cache.stats().evictions, 1u);  // w1's entry was evicted

  // The evicted entry's reverse-index links must be gone too, or this
  // would double-drop / dangle.
  EXPECT_EQ(cache.InvalidateDistribution(w1_hash), 0u);
  EXPECT_EQ(cache.InvalidateDistribution(w2_hash), 1u);
  EXPECT_EQ(cache.size(), 0u);
}

TEST_F(PlanCacheTest, SnapshotReloadSupportsPreciseInvalidation) {
  // The reverse index is rebuilt from the canonical signature bytes on
  // LoadSnapshot (QuerySignature::ExtractDistHashes), so a warm-started
  // cache invalidates just as precisely as the one that was saved.
  Workload w1 = MakeWorkload(820);
  Workload w2 = MakeWorkload(821);
  uint64_t w1_hash = w1.catalog.table(0).SizeDistribution().ContentHash();

  PlanCache cache;
  optimizer_.Optimize(StrategyId::kLecStatic, RequestFor(w1, &cache));
  OptimizeResult original =
      optimizer_.Optimize(StrategyId::kLecStatic, RequestFor(w2, &cache));
  std::string snapshot = cache.SaveSnapshot(serde::Encoding::kBinary);

  PlanCache warmed;
  ASSERT_EQ(warmed.LoadSnapshot(snapshot), 2u);
  EXPECT_EQ(warmed.InvalidateDistribution(w1_hash), 1u);
  QuerySignature s1 =
      QuerySignature::Compute(StrategyId::kLecStatic, RequestFor(w1, nullptr));
  EXPECT_FALSE(warmed.Lookup(s1).has_value());
  OptimizeResult served =
      optimizer_.Optimize(StrategyId::kLecStatic, RequestFor(w2, &warmed));
  EXPECT_EQ(warmed.stats().hits, 1u);
  EXPECT_EQ(Bits(served.objective), Bits(original.objective));
  EXPECT_TRUE(PlanEquals(served.plan, original.plan));
}

}  // namespace
}  // namespace lec
