#include "optimizer/bucketing.h"

#include <cmath>

#include <gtest/gtest.h>

#include "dist/builders.h"
#include "optimizer/algorithm_c.h"
#include "optimizer/exhaustive.h"
#include "cost/expected_cost.h"
#include "query/generator.h"

namespace lec {
namespace {

struct Example11Fixture {
  Catalog catalog;
  Query query;
  CostModel model;

  Example11Fixture() {
    catalog.AddTable("A", 1'000'000);
    catalog.AddTable("B", 400'000);
    query.AddTable(0);
    query.AddTable(1);
    query.AddPredicate(0, 1, 3000.0 / (1e6 * 4e5));
    query.RequireOrder(0);
  }
};

TEST(BucketingTest, Example11BreakpointsIncludePaperThresholds) {
  Example11Fixture f;
  std::vector<double> bps =
      QueryMemoryBreakpoints(f.query, f.catalog, f.model, 1, 1e7);
  // The paper's §3.2 buckets for Example 1.1 are [0,633), [633,1000),
  // [1000,inf): both 633 (sqrt of 400000) and 1000 (sqrt of 1e6) must
  // appear among the discovered breakpoints.
  auto contains_near = [&bps](double v) {
    for (double b : bps) {
      if (std::fabs(b - v) < 1.0) return true;
    }
    return false;
  };
  EXPECT_TRUE(contains_near(std::sqrt(1e6)));    // 1000
  EXPECT_TRUE(contains_near(std::sqrt(4e5)));    // ~632.5
  EXPECT_TRUE(contains_near(std::cbrt(1e6)));    // 100
  EXPECT_TRUE(contains_near(std::cbrt(4e5)));    // ~73.7
  // Sorted ascending, within range.
  for (size_t i = 1; i < bps.size(); ++i) EXPECT_LT(bps[i - 1], bps[i]);
  for (double b : bps) {
    EXPECT_GT(b, 1);
    EXPECT_LT(b, 1e7);
  }
}

TEST(BucketingTest, BreakpointsRespectRangeFilter) {
  Example11Fixture f;
  std::vector<double> bps =
      QueryMemoryBreakpoints(f.query, f.catalog, f.model, 500, 900);
  for (double b : bps) {
    EXPECT_GT(b, 500);
    EXPECT_LT(b, 900);
  }
}

TEST(BucketingTest, EqualStrategiesDelegateToRebucket) {
  Example11Fixture f;
  Distribution fine = UniformBuckets(10, 5000, 256);
  Distribution w =
      BucketMemory(fine, 8, BucketingStrategy::kEqualWidth, f.query,
                   f.catalog, f.model);
  Distribution p =
      BucketMemory(fine, 8, BucketingStrategy::kEqualProb, f.query,
                   f.catalog, f.model);
  EXPECT_LE(w.size(), 8u);
  EXPECT_LE(p.size(), 8u);
  EXPECT_NEAR(w.Mean(), fine.Mean(), 1e-9 * fine.Mean());
  EXPECT_NEAR(p.Mean(), fine.Mean(), 1e-9 * fine.Mean());
}

TEST(BucketingTest, LevelSetRespectsBudgetAndMass) {
  Example11Fixture f;
  Distribution fine = UniformBuckets(10, 5000, 512);
  for (size_t b : {2u, 3u, 5u, 8u}) {
    Distribution d = BucketMemory(fine, b, BucketingStrategy::kLevelSet,
                                  f.query, f.catalog, f.model);
    EXPECT_LE(d.size(), b);
    double mass = 0;
    for (const Bucket& bk : d.buckets()) mass += bk.prob;
    EXPECT_NEAR(mass, 1.0, 1e-9);
  }
}

TEST(BucketingTest, LevelSetSeparatesCostRegimes) {
  Example11Fixture f;
  // Fine distribution straddling the 633 and 1000 thresholds.
  Distribution fine = UniformBuckets(400, 1600, 480);
  Distribution d = BucketMemory(fine, 16, BucketingStrategy::kLevelSet,
                                f.query, f.catalog, f.model);
  // No coarse bucket's representative may land on the wrong side of a
  // breakpoint relative to the fine mass it absorbed — check the key ones:
  // representatives must avoid a small neighbourhood only if cells align.
  // Weaker, robust property: with 16 cells allowed and only ~10 relevant
  // breakpoints in range, each of the three Example 1.1 regimes
  // [400,633), [633,1000), [1000,1600] holds at least one representative.
  bool low = false, mid = false, high = false;
  for (const Bucket& bk : d.buckets()) {
    if (bk.value < 632.45) low = true;
    else if (bk.value <= 1000) mid = true;
    else high = true;
  }
  EXPECT_TRUE(low);
  EXPECT_TRUE(mid);
  EXPECT_TRUE(high);
}

TEST(BucketingTest, LevelSetBeatsEqualWidthAtSameBudget) {
  // The §3.7 payoff: for Example 1.1, 3 level-set buckets capture the EC of
  // every plan as well as a much finer uniform bucketing, while 3
  // equal-width buckets can misplace the mass relative to the thresholds.
  Example11Fixture f;
  Distribution fine = UniformBuckets(300, 2400, 700);
  Distribution level = BucketMemory(fine, 3, BucketingStrategy::kLevelSet,
                                    f.query, f.catalog, f.model);
  OptimizerOptions opts;
  // EC of each complete plan under fine vs level-set bucketing.
  std::vector<PlanPtr> plans =
      EnumerateLeftDeepPlans(f.query, f.catalog, opts);
  double worst_level = 0;
  for (const PlanPtr& p : plans) {
    double ec_fine =
        PlanExpectedCostStatic(p, f.query, f.catalog, f.model, fine);
    double ec_level =
        PlanExpectedCostStatic(p, f.query, f.catalog, f.model, level);
    worst_level = std::max(worst_level,
                           std::fabs(ec_level - ec_fine) / ec_fine);
  }
  // Level-set bucketing with *three* buckets reproduces the fine-grained
  // expected costs essentially exactly (cells align with cost plateaus).
  EXPECT_LT(worst_level, 1e-6);
}

TEST(BucketingTest, OptimizerChoiceInvariantUnderLevelSetCoarsening) {
  Example11Fixture f;
  Distribution fine = UniformBuckets(300, 2400, 700);
  Distribution level = BucketMemory(fine, 3, BucketingStrategy::kLevelSet,
                                    f.query, f.catalog, f.model);
  OptimizeResult with_fine =
      OptimizeLecStatic(f.query, f.catalog, f.model, fine);
  OptimizeResult with_level =
      OptimizeLecStatic(f.query, f.catalog, f.model, level);
  EXPECT_TRUE(PlanEquals(with_fine.plan, with_level.plan));
  EXPECT_NEAR(with_fine.objective, with_level.objective,
              1e-6 * with_fine.objective);
}

TEST(BucketingTest, RejectsZeroBuckets) {
  Example11Fixture f;
  Distribution fine = UniformBuckets(10, 100, 16);
  EXPECT_THROW(BucketMemory(fine, 0, BucketingStrategy::kLevelSet, f.query,
                            f.catalog, f.model),
               std::invalid_argument);
}

}  // namespace
}  // namespace lec
