// Edge cases of the dist/ core beyond the seed suite: invariants under
// repeated rebucketing, zero-phase Markov marginals, and reproducibility of
// sampling under seeded generators.
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "dist/builders.h"
#include "dist/distribution.h"
#include "dist/markov.h"
#include "util/rng.h"

namespace lec {
namespace {

double TotalMass(const Distribution& d) {
  double total = 0;
  for (const Bucket& b : d.buckets()) total += b.prob;
  return total;
}

TEST(DistEdgeCasesTest, RepeatedRebucketConservesMassAndMean) {
  Rng rng(2024);
  std::vector<Bucket> buckets;
  for (int i = 0; i < 500; ++i) {
    buckets.push_back({rng.LogUniform(1, 1e7), rng.Uniform(0.001, 1.0)});
  }
  Distribution d(std::move(buckets));
  double mean = d.Mean();
  for (RebucketStrategy s :
       {RebucketStrategy::kEqualWidth, RebucketStrategy::kEqualProb}) {
    Distribution cur = d;
    // Shrink through a whole cascade of budgets; every step must keep the
    // distribution normalized and mean-preserving.
    for (size_t b : {256u, 100u, 64u, 17u, 16u, 5u, 2u, 1u}) {
      cur = cur.Rebucket(b, s);
      ASSERT_GE(cur.size(), 1u);
      ASSERT_LE(cur.size(), b);
      EXPECT_NEAR(TotalMass(cur), 1.0, 1e-12) << "b=" << b;
      EXPECT_NEAR(cur.Mean(), mean, 1e-9 * mean) << "b=" << b;
    }
    EXPECT_EQ(cur.size(), 1u);
  }
}

TEST(DistEdgeCasesTest, RebucketIsIdempotentAtFixedBudget) {
  Distribution d = DiscretizedLogNormal(std::log(500), 1.0, 1, 1e6, 200);
  for (RebucketStrategy s :
       {RebucketStrategy::kEqualWidth, RebucketStrategy::kEqualProb}) {
    Distribution once = d.Rebucket(8, s);
    // A second application at the same budget is a no-op: the result
    // already fits, so the same object comes back bucket-for-bucket.
    EXPECT_TRUE(once.Rebucket(8, s) == once);
  }
}

TEST(DistEdgeCasesTest, MarginalAfterZeroIsIdentityForAnyChain) {
  Distribution init({{40, 0.25}, {600, 0.25}, {10000, 0.5}});
  std::vector<double> states = {40, 150, 600, 2500, 10000};
  std::vector<MarkovChain> chains;
  chains.push_back(MarkovChain::Static(states));
  chains.push_back(MarkovChain::Drift(states, 0.3));
  chains.push_back(MarkovChain::RedrawFrom(init, 0.5));
  for (const MarkovChain& chain : chains) {
    Distribution after = chain.MarginalAfter(init, 0);
    EXPECT_TRUE(after == init);
    EXPECT_DOUBLE_EQ(after.CdfDistance(init), 0.0);
  }
  // The zero-phase marginal still validates the support, like Step does.
  MarkovChain narrow = MarkovChain::Static({40, 600});
  EXPECT_THROW(narrow.MarginalAfter(init, 0), std::invalid_argument);
}

TEST(DistEdgeCasesTest, SampleIsDeterministicUnderSeededRng) {
  Distribution d = DiscretizedNormal(1000, 300, 0, 2000, 64);
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_DOUBLE_EQ(d.Sample(&a), d.Sample(&b));
  }
  // A different seed must diverge somewhere in a long run.
  Rng c(123), e(124);
  bool diverged = false;
  for (int i = 0; i < 1000 && !diverged; ++i) {
    diverged = d.Sample(&c) != d.Sample(&e);
  }
  EXPECT_TRUE(diverged);
}

TEST(DistEdgeCasesTest, TrajectoryIsDeterministicUnderSeededRng) {
  MarkovChain chain = MarkovChain::Drift({10, 20, 30, 40}, 0.4);
  Distribution init({{10, 0.5}, {40, 0.5}});
  Rng a(77), b(77);
  std::vector<double> ta = chain.SampleTrajectory(init, 64, &a);
  std::vector<double> tb = chain.SampleTrajectory(init, 64, &b);
  EXPECT_EQ(ta, tb);
}

}  // namespace
}  // namespace lec
