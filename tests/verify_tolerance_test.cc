// The documented FP comparison policy (verify/tolerance.h): helper
// semantics, plus the regression test pinning the A/B cached-scoring
// reassociation tolerance — the pair of computations that must never be
// compared bit-for-bit (the cached walk sums per-operator ECs, the plain
// walk sums per-bucket plan costs; equal in exact arithmetic only).
#include "verify/tolerance.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "cost/ec_cache.h"
#include "cost/expected_cost.h"
#include "dist/builders.h"
#include "optimizer/algorithm_a.h"
#include "optimizer/algorithm_b.h"
#include "query/generator.h"

namespace lec::verify {
namespace {

TEST(ToleranceTest, UlpDistanceBasics) {
  EXPECT_EQ(UlpDistance(1.0, 1.0), 0u);
  double next = std::nextafter(1.0, 2.0);
  EXPECT_EQ(UlpDistance(1.0, next), 1u);
  EXPECT_EQ(UlpDistance(next, 1.0), 1u);
  EXPECT_EQ(UlpDistance(-1.0, std::nextafter(-1.0, -2.0)), 1u);
  // Zero equals itself regardless of sign.
  EXPECT_EQ(UlpDistance(0.0, -0.0), 0u);
  // NaN and opposite-sign pairs are "infinitely" far.
  constexpr uint64_t kFar = std::numeric_limits<uint64_t>::max();
  EXPECT_EQ(UlpDistance(std::nan(""), 1.0), kFar);
  EXPECT_EQ(UlpDistance(-1.0, 1.0), kFar);
}

TEST(ToleranceTest, RelativeErrorHasAbsoluteFloor) {
  // Large magnitudes: plain relative error.
  EXPECT_DOUBLE_EQ(RelativeError(200.0, 100.0), 0.5);
  // Near zero the floor of 1 stops the ratio from exploding.
  EXPECT_DOUBLE_EQ(RelativeError(1e-12, 0.0), 1e-12);
}

TEST(ToleranceTest, ApproxEqualAndNoBetterThan) {
  EXPECT_TRUE(ApproxEqual(1.0, 1.0 + 1e-12));
  EXPECT_FALSE(ApproxEqual(1.0, 1.001));
  double inf = std::numeric_limits<double>::infinity();
  EXPECT_TRUE(ApproxEqual(inf, inf));
  EXPECT_FALSE(ApproxEqual(inf, 1.0));
  // NoBetterThan: candidate may exceed or equal the reference, and may dip
  // below only within the tolerance.
  EXPECT_TRUE(NoBetterThan(101.0, 100.0));
  EXPECT_TRUE(NoBetterThan(100.0, 100.0));
  EXPECT_TRUE(NoBetterThan(100.0 - 1e-8, 100.0));
  EXPECT_FALSE(NoBetterThan(99.0, 100.0));
}

TEST(ToleranceTest, PinsTheDocumentedTolerances) {
  // These constants are part of the verification contract: loosening them
  // must be a reviewed decision, not a drive-by edit. See
  // verify/tolerance.h for the derivation.
  EXPECT_EQ(kSummationReassociationRelTol, 1e-9);
  EXPECT_EQ(kOracleRelTol, 1e-9);
  EXPECT_EQ(kKernelParityRelTol, 1e-9);
}

// The regression test this policy exists for: Algorithm A and B cached
// candidate scoring must agree with the uncached walk *within the
// documented tolerance* across a seeded corpus — and the same plan must be
// chosen. (An exact-equality expectation here is a latent flake: the two
// walks associate the same FP sum differently.)
TEST(ToleranceTest, AbCachedScoringParityAcrossCorpus) {
  CostModel model;
  Distribution memory = UniformBuckets(40, 3000, 5);
  Rng rng(2026);
  for (int i = 0; i < 6; ++i) {
    WorkloadOptions wopts;
    wopts.num_tables = 4 + i % 2;
    wopts.shape = i % 2 == 0 ? JoinGraphShape::kChain : JoinGraphShape::kStar;
    wopts.order_by_probability = 0.5;
    Workload w = GenerateWorkload(wopts, &rng);

    EcCache cache;
    OptimizerOptions cached_opts;
    cached_opts.ec_cache = &cache;
    OptimizeResult a_plain =
        OptimizeAlgorithmA(w.query, w.catalog, model, memory);
    OptimizeResult a_cached =
        OptimizeAlgorithmA(w.query, w.catalog, model, memory, cached_opts);
    EXPECT_TRUE(PlanEquals(a_plain.plan, a_cached.plan)) << "A, corpus " << i;
    EXPECT_LE(RelativeError(a_plain.objective, a_cached.objective),
              kSummationReassociationRelTol)
        << "A, corpus " << i;

    OptimizeResult b_plain =
        OptimizeAlgorithmB(w.query, w.catalog, model, memory, 3);
    OptimizeResult b_cached = OptimizeAlgorithmB(w.query, w.catalog, model,
                                                 memory, 3, cached_opts);
    EXPECT_TRUE(PlanEquals(b_plain.plan, b_cached.plan)) << "B, corpus " << i;
    EXPECT_LE(RelativeError(b_plain.objective, b_cached.objective),
              kSummationReassociationRelTol)
        << "B, corpus " << i;
  }
}

}  // namespace
}  // namespace lec::verify
