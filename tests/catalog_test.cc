#include "catalog/catalog.h"

#include <stdexcept>

#include <gtest/gtest.h>

namespace lec {
namespace {

TEST(CatalogTest, AddAndLookup) {
  Catalog c;
  TableId a = c.AddTable("A", 1000);
  TableId b = c.AddTable("B", 400);
  EXPECT_EQ(c.size(), 2u);
  EXPECT_EQ(c.table(a).name, "A");
  EXPECT_DOUBLE_EQ(c.table(b).pages, 400);
  EXPECT_EQ(c.FindByName("B"), b);
  EXPECT_THROW(c.FindByName("missing"), std::out_of_range);
}

TEST(CatalogTest, RejectsNonPositivePages) {
  Catalog c;
  EXPECT_THROW(c.AddTable("bad", 0), std::invalid_argument);
  EXPECT_THROW(c.AddTable("bad", -5), std::invalid_argument);
}

TEST(CatalogTest, SizeDistributionDefaultsToPointMass) {
  Catalog c;
  TableId a = c.AddTable("A", 1000);
  Distribution d = c.table(a).SizeDistribution();
  EXPECT_EQ(d.size(), 1u);
  EXPECT_DOUBLE_EQ(d.Mean(), 1000);
}

TEST(CatalogTest, ExplicitSizeDistribution) {
  Catalog c;
  Table t;
  t.name = "U";
  t.pages = 500;
  t.pages_dist = Distribution::TwoPoint(100, 0.5, 900, 0.5);
  TableId id = c.AddTable(std::move(t));
  EXPECT_DOUBLE_EQ(c.table(id).SizeDistribution().Mean(), 500);
  EXPECT_EQ(c.table(id).SizeDistribution().size(), 2u);
}

TEST(CatalogTest, RejectsNonPositiveSizeDistribution) {
  Catalog c;
  Table t;
  t.name = "bad";
  t.pages = 10;
  t.pages_dist = Distribution::TwoPoint(-5, 0.5, 10, 0.5);
  EXPECT_THROW(c.AddTable(std::move(t)), std::invalid_argument);
}

}  // namespace
}  // namespace lec
