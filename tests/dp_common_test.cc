#include "optimizer/dp_common.h"

#include <gtest/gtest.h>

#include "cost/cost_policies.h"
#include "dist/builders.h"
#include "optimizer/exhaustive.h"
#include "plan/plan.h"
#include "query/generator.h"
#include "util/rng.h"

namespace lec {
namespace {

struct ChainFixture {
  Catalog catalog;
  Query query;
  OptimizerOptions options;

  ChainFixture() {
    catalog.AddTable("A", 100);
    catalog.AddTable("B", 200);
    catalog.AddTable("C", 400);
    query.AddTable(0);
    query.AddTable(1);
    query.AddTable(2);
    query.AddPredicate(0, 1, 0.01);
    query.AddPredicate(1, 2, 0.001);
  }
};

TEST(DpContextTest, TablePagesFromCatalogMeans) {
  ChainFixture f;
  DpContext ctx(f.query, f.catalog, f.options);
  EXPECT_DOUBLE_EQ(ctx.TablePages(0), 100);
  EXPECT_DOUBLE_EQ(ctx.TablePages(2), 400);
}

TEST(DpContextTest, SubsetPagesMultipliesSizesAndSelectivities) {
  ChainFixture f;
  DpContext ctx(f.query, f.catalog, f.options);
  EXPECT_DOUBLE_EQ(ctx.SubsetPages(0b001), 100);
  EXPECT_DOUBLE_EQ(ctx.SubsetPages(0b011), 100 * 200 * 0.01);
  EXPECT_DOUBLE_EQ(ctx.SubsetPages(0b110), 200 * 400 * 0.001);
  // Disconnected subset {A, C}: no internal predicate applies.
  EXPECT_DOUBLE_EQ(ctx.SubsetPages(0b101), 100 * 400);
  EXPECT_DOUBLE_EQ(ctx.SubsetPages(0b111), 100 * 200 * 400 * 0.01 * 0.001);
}

TEST(DpContextTest, CrossProductRules) {
  ChainFixture f;
  DpContext ctx(f.query, f.catalog, f.options);
  EXPECT_FALSE(ctx.CrossProductForbidden(0b001, 1));  // A-B connected
  EXPECT_TRUE(ctx.CrossProductForbidden(0b001, 2));   // A x C is cross
  OptimizerOptions allow;
  allow.avoid_cross_products = false;
  DpContext ctx2(f.query, f.catalog, allow);
  EXPECT_FALSE(ctx2.CrossProductForbidden(0b001, 2));
}

TEST(DpContextTest, CrossProductsAllowedWhenGraphDisconnected) {
  Catalog catalog;
  catalog.AddTable("A", 10);
  catalog.AddTable("B", 10);
  catalog.AddTable("C", 10);
  Query q;
  q.AddTable(0);
  q.AddTable(1);
  q.AddTable(2);
  q.AddPredicate(0, 1, 0.1);  // C is isolated
  OptimizerOptions opts;
  DpContext ctx(q, catalog, opts);
  EXPECT_FALSE(ctx.CrossProductForbidden(0b011, 2));
}

TEST(DpContextTest, JoinOutputOrderRules) {
  // NL preserves the outer's order.
  EXPECT_EQ(DpContext::JoinOutputOrder(JoinMethod::kNestedLoop, 3,
                                       kUnsorted),
            3);
  EXPECT_EQ(DpContext::JoinOutputOrder(JoinMethod::kNestedLoop, kUnsorted,
                                       kUnsorted),
            kUnsorted);
  // SM emits its key's order.
  EXPECT_EQ(DpContext::JoinOutputOrder(JoinMethod::kSortMerge, 3, 1), 1);
  // GH destroys order.
  EXPECT_EQ(DpContext::JoinOutputOrder(JoinMethod::kGraceHash, 3,
                                       kUnsorted),
            kUnsorted);
}

TEST(DpContextTest, RejectsOversizedQueries) {
  Catalog catalog;
  Query q;
  for (int i = 0; i < 21; ++i) {
    // Two-step concat: GCC 12's -Wrestrict false-fires on the inlined
    // "T" + std::to_string(i) (PR 105329).
    std::string name = "T";
    name += std::to_string(i);
    catalog.AddTable(name, 10);
    q.AddTable(i);
  }
  OptimizerOptions opts;
  EXPECT_THROW(DpContext(q, catalog, opts), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Cost-bounded DP pruning (PR 6). The load-bearing contract is I9: pruning
// is an optimization of the SEARCH, not the semantics — pruned and unpruned
// runs must agree bit for bit in objective and plan. The fuzz driver sweeps
// this over random workloads; these tests pin it deterministically plus the
// counter bookkeeping the bench (E20) and EXPLAIN report.
// ---------------------------------------------------------------------------

Workload PruningWorkload(JoinGraphShape shape, int n) {
  Rng rng(static_cast<uint64_t>(n) * 77 + 13);
  WorkloadOptions wopts;
  wopts.num_tables = n;
  wopts.shape = shape;
  wopts.order_by_probability = 1.0;
  return GenerateWorkload(wopts, &rng);
}

TEST(DpPruningTest, PrunedDpBitIdenticalToUnpruned) {
  CostModel model;
  Distribution memory = UniformBuckets(50, 5000, 27);
  for (JoinGraphShape shape : {JoinGraphShape::kChain, JoinGraphShape::kStar,
                               JoinGraphShape::kClique}) {
    Workload w = PruningWorkload(shape, 8);
    OptimizerOptions on_opts;
    on_opts.dp_pruning = DpPruning::kOn;
    OptimizerOptions off_opts;
    off_opts.dp_pruning = DpPruning::kOff;
    DpContext on_ctx(w.query, w.catalog, on_opts);
    DpContext off_ctx(w.query, w.catalog, off_opts);
    LscCostProvider lsc{model, 800};
    LecStaticCostProvider lec{model, memory};
    auto check = [&](const auto& provider, const char* regime) {
      OptimizeResult on = RunDp(on_ctx, provider);
      OptimizeResult off = RunDp(off_ctx, provider);
      // Bitwise, not near: the branch-and-bound may only skip work whose
      // absence cannot change which entry RetainBest keeps.
      EXPECT_EQ(on.objective, off.objective) << regime;
      EXPECT_TRUE(PlanEquals(on.plan, off.plan)) << regime;
      // Pruning never costs more formula runs than the full sweep, and the
      // greedy incumbent's runs are accounted separately so
      // cost_evaluations keeps the Theorem 3.2/3.3 units.
      EXPECT_LE(on.cost_evaluations, off.cost_evaluations) << regime;
      EXPECT_GT(on.incumbent_cost_evaluations, 0u) << regime;
      // The disabled run must report a silent pruner, not a dormant one.
      EXPECT_EQ(off.pruned_expansions, 0u) << regime;
      EXPECT_EQ(off.pruned_candidates, 0u) << regime;
      EXPECT_EQ(off.pruned_entries, 0u) << regime;
      EXPECT_EQ(off.incumbent_cost_evaluations, 0u) << regime;
    };
    check(lsc, "lsc");
    check(lec, "lec_static");
  }
}

TEST(DpPruningTest, AutoEngagesForDefaultOnProviders) {
  // kAuto must behave as kOn for the providers that declare
  // kPruningDefaultOn (lsc, lec_static): same results, incumbent seeded.
  CostModel model;
  Workload w = PruningWorkload(JoinGraphShape::kChain, 8);
  OptimizerOptions auto_opts;  // dp_pruning defaults to kAuto
  DpContext ctx(w.query, w.catalog, auto_opts);
  LscCostProvider lsc{model, 800};
  OptimizeResult r = RunDp(ctx, lsc);
  EXPECT_GT(r.incumbent_cost_evaluations, 0u);
  OptimizerOptions off_opts;
  off_opts.dp_pruning = DpPruning::kOff;
  DpContext off_ctx(w.query, w.catalog, off_opts);
  OptimizeResult off = RunDp(off_ctx, lsc);
  EXPECT_EQ(r.objective, off.objective);
  EXPECT_TRUE(PlanEquals(r.plan, off.plan));
}

TEST(DpScratchTest, ReleaseReturnsRetainedBytesThenZero) {
  CostModel model;
  Workload w = PruningWorkload(JoinGraphShape::kChain, 8);
  OptimizerOptions opts;
  DpContext ctx(w.query, w.catalog, opts);
  LscCostProvider lsc{model, 800};
  OptimizeResult before = RunDp(ctx, lsc);  // warms the thread-local scratch
  EXPECT_GT(ThreadLocalDpScratch().RetainedBytes(), 0u);
  size_t released = ReleaseThreadLocalDpScratch();
  EXPECT_GT(released, 0u);
  // Idempotent: a second trim finds nothing retained.
  EXPECT_EQ(ReleaseThreadLocalDpScratch(), 0u);
  // And the DP re-warms transparently after a release.
  OptimizeResult after = RunDp(ctx, lsc);
  EXPECT_EQ(after.objective, before.objective);
  EXPECT_TRUE(PlanEquals(after.plan, before.plan));
}

TEST(ExhaustiveTest, PlanCountForTwoTables) {
  Catalog catalog;
  catalog.AddTable("A", 10);
  catalog.AddTable("B", 20);
  Query q;
  q.AddTable(0);
  q.AddTable(1);
  q.AddPredicate(0, 1, 0.1);
  OptimizerOptions opts;
  std::vector<PlanPtr> plans = EnumerateLeftDeepPlans(q, catalog, opts);
  // 2 orders x 3 methods.
  EXPECT_EQ(plans.size(), 6u);
}

TEST(ExhaustiveTest, CrossProductsPrunedForConnectedQuery) {
  ChainFixture f;
  std::vector<PlanPtr> plans =
      EnumerateLeftDeepPlans(f.query, f.catalog, f.options);
  for (const PlanPtr& p : plans) {
    // Every join node must have at least one predicate (no cross joins).
    std::vector<const PlanNode*> stack = {p.get()};
    while (!stack.empty()) {
      const PlanNode* n = stack.back();
      stack.pop_back();
      if (n->kind == PlanNode::Kind::kJoin) {
        EXPECT_FALSE(n->predicates.empty());
        stack.push_back(n->left.get());
        stack.push_back(n->right.get());
      } else if (n->kind == PlanNode::Kind::kSort) {
        stack.push_back(n->left.get());
      }
    }
  }
}

TEST(ExhaustiveTest, EnforcersDoubleTheSortMergeCandidates) {
  Catalog catalog;
  catalog.AddTable("A", 10);
  catalog.AddTable("B", 20);
  Query q;
  q.AddTable(0);
  q.AddTable(1);
  q.AddPredicate(0, 1, 0.1);
  OptimizerOptions plain;
  OptimizerOptions with_enforcers;
  with_enforcers.consider_sort_enforcers = true;
  size_t plain_count =
      EnumerateLeftDeepPlans(q, catalog, plain).size();
  size_t enforcer_count =
      EnumerateLeftDeepPlans(q, catalog, with_enforcers).size();
  // Each SM candidate (2 of 6) gains a sorted-inner variant.
  EXPECT_EQ(plain_count, 6u);
  EXPECT_EQ(enforcer_count, 8u);
}

TEST(ExhaustiveTest, TopKOrderedAscending) {
  ChainFixture f;
  auto top = ExhaustiveTopK(
      f.query, f.catalog, f.options,
      [](const PlanPtr& p) { return p->est_pages; }, 5);
  for (size_t i = 1; i < top.size(); ++i) {
    EXPECT_LE(top[i - 1].second, top[i].second);
  }
}

TEST(ExhaustiveTest, SingleTableQuery) {
  Catalog catalog;
  catalog.AddTable("A", 10);
  Query q;
  q.AddTable(0);
  OptimizerOptions opts;
  std::vector<PlanPtr> plans = EnumerateLeftDeepPlans(q, catalog, opts);
  ASSERT_EQ(plans.size(), 1u);
  EXPECT_EQ(plans[0]->kind, PlanNode::Kind::kAccess);
}

}  // namespace
}  // namespace lec
