// End-to-end integration tests: optimizer family x simulators x engine.
#include <gtest/gtest.h>

#include "cost/expected_cost.h"
#include "dist/builders.h"
#include "exec/analytic_simulator.h"
#include "exec/engine_simulator.h"
#include "optimizer/algorithm_a.h"
#include "optimizer/algorithm_b.h"
#include "optimizer/algorithm_c.h"
#include "optimizer/algorithm_d.h"
#include "optimizer/exhaustive.h"
#include "optimizer/system_r.h"
#include "plan/printer.h"
#include "query/generator.h"

namespace lec {
namespace {

// The complete Example 1.1 pipeline: optimize, verify plan shapes, verify
// expected costs, then confirm by Monte-Carlo simulation.
TEST(IntegrationTest, Example11EndToEnd) {
  Catalog catalog;
  catalog.AddTable("A", 1'000'000);
  catalog.AddTable("B", 400'000);
  Query q;
  q.AddTable(0);
  q.AddTable(1);
  q.AddPredicate(0, 1, 3000.0 / (1e6 * 4e5));
  q.RequireOrder(0);
  CostModel model;
  Distribution memory = Distribution::TwoPoint(2000, 0.8, 700, 0.2);

  OptimizeResult lsc_mode = OptimizeLscAtEstimate(q, catalog, model, memory,
                                                  PointEstimate::kMode);
  OptimizeResult lsc_mean = OptimizeLscAtEstimate(q, catalog, model, memory,
                                                  PointEstimate::kMean);
  OptimizeResult lec = OptimizeLecStatic(q, catalog, model, memory);

  // "In either case, the plan chosen would be Plan 1" (sort-merge; the
  // SM cost is symmetric in A/B so either join order may be reported).
  ASSERT_EQ(lsc_mode.plan->kind, PlanNode::Kind::kJoin);
  EXPECT_EQ(lsc_mode.plan->method, JoinMethod::kSortMerge);
  ASSERT_EQ(lsc_mean.plan->kind, PlanNode::Kind::kJoin);
  EXPECT_EQ(lsc_mean.plan->method, JoinMethod::kSortMerge);
  // "However, we claim that Plan 2 is likely to be cheaper on average."
  ASSERT_EQ(lec.plan->kind, PlanNode::Kind::kSort);
  EXPECT_EQ(lec.plan->left->method, JoinMethod::kGraceHash);

  double lsc_ec =
      PlanExpectedCostStatic(lsc_mode.plan, q, catalog, model, memory);
  EXPECT_GT(lsc_ec / lec.objective, 1.12);  // ~13% cheaper incl. scans

  EnvironmentModel env;
  env.memory = memory;
  Rng rng(42);
  std::vector<MonteCarloResult> sim = SimulatePlansPaired(
      {lsc_mode.plan, lec.plan}, q, catalog, model, env, 3000, &rng);
  EXPECT_LT(sim[1].mean, sim[0].mean);
}

// All five optimizers agree when there is no uncertainty at all.
TEST(IntegrationTest, AllOptimizersAgreeUnderCertainty) {
  Rng rng(11);
  WorkloadOptions wopts;
  wopts.num_tables = 5;
  wopts.shape = JoinGraphShape::kStar;
  Workload w = GenerateWorkload(wopts, &rng);
  CostModel model;
  Distribution point = Distribution::PointMass(600);
  double lsc = OptimizeLsc(w.query, w.catalog, model, 600).objective;
  double a =
      OptimizeAlgorithmA(w.query, w.catalog, model, point).objective;
  double b =
      OptimizeAlgorithmB(w.query, w.catalog, model, point, 4).objective;
  double c = OptimizeLecStatic(w.query, w.catalog, model, point).objective;
  double d = OptimizeAlgorithmD(w.query, w.catalog, model, point).objective;
  EXPECT_NEAR(a, lsc, 1e-9 * lsc);
  EXPECT_NEAR(b, lsc, 1e-9 * lsc);
  EXPECT_NEAR(c, lsc, 1e-9 * lsc);
  EXPECT_NEAR(d, lsc, 1e-9 * lsc);
}

// The quality ladder (A >= B >= C in expected cost) across many seeds.
class QualityLadderTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(QualityLadderTest, AGeqBGeqC) {
  Rng rng(GetParam());
  WorkloadOptions wopts;
  wopts.num_tables = static_cast<int>(3 + GetParam() % 4);
  wopts.shape = static_cast<JoinGraphShape>(GetParam() % 5);
  wopts.order_by_probability = 0.4;
  Workload w = GenerateWorkload(wopts, &rng);
  CostModel model;
  Distribution memory({{15, 0.2}, {150, 0.3}, {1500, 0.3}, {15000, 0.2}});
  double a =
      OptimizeAlgorithmA(w.query, w.catalog, model, memory).objective;
  double b =
      OptimizeAlgorithmB(w.query, w.catalog, model, memory, 4).objective;
  double c = OptimizeLecStatic(w.query, w.catalog, model, memory).objective;
  EXPECT_LE(c, b + 1e-9 * b);
  EXPECT_LE(b, a + 1e-9 * a);
}

INSTANTIATE_TEST_SUITE_P(Seeds, QualityLadderTest,
                         ::testing::Range<uint64_t>(500, 525));

// Engine-level end-to-end: on a scaled Example 1.1 the LEC plan's
// *measured* page I/O on the storage engine beats the LSC plan's, averaged
// over sampled memory states.
TEST(IntegrationTest, LecBeatsLscOnRealEngine) {
  // Scale: A = 1000, B = 400 pages. sqrt(A) ~ 31.6, sqrt(B) = 20.
  // Memory: 45 pages (ample) 80% / 22 pages (between sqrt(B) and sqrt(A))
  // 20% — the same regime structure as the paper's example.
  Catalog catalog;
  catalog.AddTable("A", 1000);
  catalog.AddTable("B", 400);
  Query q;
  q.AddTable(0);
  q.AddTable(1);
  // Selectivity gives an 80-page result: too big to sort for free, so the
  // ORDER BY genuinely separates Plan 1 (SM, pre-sorted) from Plan 2.
  q.AddPredicate(0, 1, 2e-4);
  q.RequireOrder(0);
  CostModel model;
  Distribution memory = Distribution::TwoPoint(45, 0.8, 22, 0.2);

  OptimizeResult lsc = OptimizeLscAtEstimate(q, catalog, model, memory,
                                             PointEstimate::kMode);
  OptimizeResult lec = OptimizeLecStatic(q, catalog, model, memory);
  ASSERT_FALSE(PlanEquals(lsc.plan, lec.plan));

  Rng rng(77);
  EngineWorkload data = BuildChainEngineWorkload(q, catalog, &rng);
  auto measure = [&](const PlanPtr& plan) {
    double total = 0;
    for (const Bucket& m : memory.buckets()) {
      EngineRunResult r = ExecutePlanOnEngine(plan, q, data, {m.value});
      total += m.prob * static_cast<double>(r.total_io());
    }
    return total;
  };
  double lsc_io = measure(lsc.plan);
  double lec_io = measure(lec.plan);
  EXPECT_LT(lec_io, lsc_io);
}

// Algorithm D hedges against selectivity uncertainty end-to-end: its plan's
// Monte-Carlo average (sampling selectivities) beats the mean-based plan's.
TEST(IntegrationTest, AlgorithmDHedgesSelectivityRisk) {
  Catalog catalog;
  catalog.AddTable("A", 2000);
  Table b;
  b.name = "B";
  b.pages = 100;
  b.pages_dist = Distribution::TwoPoint(40, 0.75, 280, 0.25);
  catalog.AddTable(std::move(b));
  Query q;
  q.AddTable(0);
  q.AddTable(1);
  q.AddPredicate(0, 1, 1e-4);
  CostModel model;
  Distribution memory = Distribution::PointMass(150);
  OptimizeResult mean_based = OptimizeLecStatic(q, catalog, model, memory);
  OptimizeResult d = OptimizeAlgorithmD(q, catalog, model, memory);
  EnvironmentModel env;
  env.memory = memory;
  env.sample_data_parameters = true;
  Rng rng(99);
  std::vector<MonteCarloResult> sim = SimulatePlansPaired(
      {mean_based.plan, d.plan}, q, catalog, model, env, 4000, &rng);
  EXPECT_LT(sim[1].mean, sim[0].mean);
}

// Interesting-orders extension: with the sorted-input discount enabled and
// enforcers allowed, the DP still matches the exhaustive oracle (the
// paper's footnote-1 claim that its solutions survive such extensions).
class InterestingOrdersTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(InterestingOrdersTest, DpMatchesOracleWithDiscount) {
  Rng rng(GetParam());
  WorkloadOptions wopts;
  wopts.num_tables = 4;
  wopts.shape = GetParam() % 2 ? JoinGraphShape::kChain
                               : JoinGraphShape::kStar;
  wopts.order_by_probability = 0.6;
  Workload w = GenerateWorkload(wopts, &rng);
  CostModelOptions mopts;
  mopts.sorted_input_discount = true;
  CostModel model(mopts);
  OptimizerOptions opts;
  opts.consider_sort_enforcers = true;
  Distribution memory({{35, 0.5}, {700, 0.5}});
  OptimizeResult dp =
      OptimizeLecStatic(w.query, w.catalog, model, memory, opts);
  OptimizeResult oracle = ExhaustiveBest(
      w.query, w.catalog, opts, [&](const PlanPtr& p) {
        return PlanExpectedCostStatic(p, w.query, w.catalog, model, memory);
      });
  EXPECT_NEAR(dp.objective, oracle.objective,
              1e-9 * std::max(1.0, oracle.objective));
}

INSTANTIATE_TEST_SUITE_P(Seeds, InterestingOrdersTest,
                         ::testing::Range<uint64_t>(600, 610));

// Optimization-cost accounting (Theorem 3.2/3.3 units): Algorithm C's cost
// evaluations are ~b x System R's.
TEST(IntegrationTest, AlgorithmCCostScalesWithBuckets) {
  Rng rng(12);
  WorkloadOptions wopts;
  wopts.num_tables = 6;
  wopts.shape = JoinGraphShape::kClique;
  Workload w = GenerateWorkload(wopts, &rng);
  CostModel model;
  // Pruning off: the Theorem 3.2/3.3 accounting is about the full
  // enumeration, and the branch-and-bound skips different candidates per
  // costing regime (and per memory distribution).
  OptimizerOptions opts;
  opts.dp_pruning = DpPruning::kOff;
  OptimizeResult lsc = OptimizeLsc(w.query, w.catalog, model, 500, opts);
  // The DP examines the same number of candidates regardless of bucketing;
  // per-candidate formula evaluations scale with b.
  for (size_t b : {2u, 4u, 8u}) {
    Distribution memory = UniformBuckets(10, 10000, b);
    OptimizeResult lec =
        OptimizeLecStatic(w.query, w.catalog, model, memory, opts);
    EXPECT_EQ(lec.candidates_considered, lsc.candidates_considered);
  }
}

}  // namespace
}  // namespace lec
