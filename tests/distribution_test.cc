#include "dist/distribution.h"

#include <cmath>
#include <stdexcept>

#include <gtest/gtest.h>

#include "dist/builders.h"
#include "util/rng.h"

namespace lec {
namespace {

TEST(DistributionTest, PointMassBasics) {
  Distribution d = Distribution::PointMass(42.0);
  EXPECT_EQ(d.size(), 1u);
  EXPECT_DOUBLE_EQ(d.Mean(), 42.0);
  EXPECT_DOUBLE_EQ(d.Variance(), 0.0);
  EXPECT_DOUBLE_EQ(d.Mode(), 42.0);
  EXPECT_DOUBLE_EQ(d.Min(), 42.0);
  EXPECT_DOUBLE_EQ(d.Max(), 42.0);
}

TEST(DistributionTest, NormalizesProbabilities) {
  Distribution d({{1.0, 2.0}, {3.0, 6.0}});
  EXPECT_DOUBLE_EQ(d.PrLeq(1.0), 0.25);
  EXPECT_DOUBLE_EQ(d.PrLeq(3.0), 1.0);
  EXPECT_DOUBLE_EQ(d.Mean(), 0.25 * 1 + 0.75 * 3);
}

TEST(DistributionTest, MergesDuplicateValues) {
  Distribution d({{5.0, 0.3}, {5.0, 0.2}, {7.0, 0.5}});
  EXPECT_EQ(d.size(), 2u);
  EXPECT_DOUBLE_EQ(d.PrLeq(5.0), 0.5);
}

TEST(DistributionTest, SortsBuckets) {
  Distribution d({{9.0, 0.5}, {1.0, 0.5}});
  EXPECT_DOUBLE_EQ(d.bucket(0).value, 1.0);
  EXPECT_DOUBLE_EQ(d.bucket(1).value, 9.0);
}

TEST(DistributionTest, RejectsInvalidInput) {
  EXPECT_THROW(Distribution({}), std::invalid_argument);
  EXPECT_THROW(Distribution({{1.0, -0.5}, {2.0, 1.5}}),
               std::invalid_argument);
  EXPECT_THROW(Distribution({{1.0, 0.0}}), std::invalid_argument);
  EXPECT_THROW(
      Distribution({{std::numeric_limits<double>::quiet_NaN(), 1.0}}),
      std::invalid_argument);
}

TEST(DistributionTest, Example11MemoryDistribution) {
  // Example 1.1: 2000 pages 80% of the time, 700 pages 20%.
  Distribution m = Distribution::TwoPoint(2000, 0.8, 700, 0.2);
  EXPECT_DOUBLE_EQ(m.Mean(), 0.8 * 2000 + 0.2 * 700);  // 1740 (paper's mean)
  EXPECT_DOUBLE_EQ(m.Mode(), 2000);                    // paper's modal value
  EXPECT_DOUBLE_EQ(m.PrGt(1000), 0.8);
  EXPECT_DOUBLE_EQ(m.PrLeq(700), 0.2);
}

TEST(DistributionTest, CdfEdgeSemantics) {
  Distribution d({{1.0, 0.25}, {2.0, 0.25}, {3.0, 0.5}});
  EXPECT_DOUBLE_EQ(d.PrLeq(0.5), 0.0);
  EXPECT_DOUBLE_EQ(d.PrLeq(1.0), 0.25);
  EXPECT_DOUBLE_EQ(d.PrLt(1.0), 0.0);
  EXPECT_DOUBLE_EQ(d.PrLt(2.0), 0.25);
  EXPECT_DOUBLE_EQ(d.PrGeq(2.0), 0.75);
  EXPECT_DOUBLE_EQ(d.PrGt(3.0), 0.0);
  EXPECT_DOUBLE_EQ(d.PrInLeftOpen(1.0, 3.0), 0.75);
  EXPECT_DOUBLE_EQ(d.PrInLeftOpen(3.0, 1.0), 0.0);
}

TEST(DistributionTest, PartialExpectations) {
  Distribution d({{1.0, 0.25}, {2.0, 0.25}, {4.0, 0.5}});
  EXPECT_DOUBLE_EQ(d.PartialExpectationLeq(2.0), 0.25 + 0.5);
  EXPECT_DOUBLE_EQ(d.PartialExpectationGeq(2.0), 0.5 + 2.0);
  EXPECT_DOUBLE_EQ(d.PartialExpectationGt(2.0), 2.0);
  // Leq + Gt partitions the support.
  EXPECT_DOUBLE_EQ(d.PartialExpectationLeq(2.0) + d.PartialExpectationGt(2.0),
                   d.Mean());
}

TEST(DistributionTest, ConditionalMean) {
  Distribution d({{1.0, 0.5}, {3.0, 0.5}});
  EXPECT_DOUBLE_EQ(d.ConditionalMeanLeq(1.0), 1.0);
  EXPECT_DOUBLE_EQ(d.ConditionalMeanLeq(3.0), 2.0);
  EXPECT_THROW(d.ConditionalMeanLeq(0.5), std::domain_error);
}

TEST(DistributionTest, ExpectMatchesManualSum) {
  Distribution d({{1.0, 0.2}, {2.0, 0.3}, {5.0, 0.5}});
  double e = d.Expect([](double v) { return v * v; });
  EXPECT_DOUBLE_EQ(e, 0.2 * 1 + 0.3 * 4 + 0.5 * 25);
  EXPECT_DOUBLE_EQ(d.Variance(), e - d.Mean() * d.Mean());
}

TEST(DistributionTest, MapMergesCollidingValues) {
  Distribution d({{-2.0, 0.5}, {2.0, 0.5}});
  Distribution sq = d.Map([](double v) { return v * v; });
  EXPECT_EQ(sq.size(), 1u);
  EXPECT_DOUBLE_EQ(sq.Mean(), 4.0);
}

TEST(DistributionTest, ProductWithIndependence) {
  Distribution a({{2.0, 0.5}, {3.0, 0.5}});
  Distribution b({{10.0, 0.5}, {100.0, 0.5}});
  Distribution prod =
      a.ProductWith(b, [](double x, double y) { return x * y; });
  EXPECT_EQ(prod.size(), 4u);
  // E[XY] = E[X]E[Y] under independence.
  EXPECT_NEAR(prod.Mean(), a.Mean() * b.Mean(), 1e-12);
}

TEST(DistributionTest, PrLeqIndependent) {
  Distribution a({{1.0, 0.5}, {3.0, 0.5}});
  Distribution b({{2.0, 0.5}, {4.0, 0.5}});
  // Pr(A <= B): pairs (1,2),(1,4),(3,4) of 4.
  EXPECT_DOUBLE_EQ(a.PrLeqIndependent(b), 0.75);
  // Ties count: Pr(A <= A') with iid two-point = 0.25+0.25+0.25 = 0.75.
  Distribution c({{1.0, 0.5}, {2.0, 0.5}});
  EXPECT_DOUBLE_EQ(c.PrLeqIndependent(c), 0.75);
}

TEST(DistributionTest, MixWith) {
  Distribution a = Distribution::PointMass(1.0);
  Distribution b = Distribution::PointMass(3.0);
  Distribution mix = a.MixWith(b, 0.25);
  EXPECT_DOUBLE_EQ(mix.Mean(), 0.25 * 1 + 0.75 * 3);
  EXPECT_THROW(a.MixWith(b, 1.5), std::invalid_argument);
}

TEST(DistributionTest, RebucketNoOpWhenSmall) {
  Distribution d({{1.0, 0.5}, {2.0, 0.5}});
  EXPECT_TRUE(d.Rebucket(2) == d);
  EXPECT_TRUE(d.Rebucket(10) == d);
}

TEST(DistributionTest, RebucketPreservesMeanExactly) {
  std::vector<Bucket> buckets;
  for (int i = 1; i <= 100; ++i) {
    buckets.push_back({static_cast<double>(i * i), 1.0 / 100});
  }
  Distribution d(std::move(buckets));
  for (size_t b : {1u, 2u, 3u, 7u, 10u, 50u}) {
    for (RebucketStrategy s :
         {RebucketStrategy::kEqualWidth, RebucketStrategy::kEqualProb}) {
      Distribution r = d.Rebucket(b, s);
      EXPECT_LE(r.size(), b) << "b=" << b;
      EXPECT_NEAR(r.Mean(), d.Mean(), 1e-9 * d.Mean())
          << "b=" << b << " strategy=" << static_cast<int>(s);
    }
  }
}

TEST(DistributionTest, RebucketToOneBucketIsMean) {
  Distribution d({{1.0, 0.2}, {5.0, 0.3}, {10.0, 0.5}});
  Distribution r = d.Rebucket(1);
  EXPECT_EQ(r.size(), 1u);
  EXPECT_DOUBLE_EQ(r.Mean(), d.Mean());
}

TEST(DistributionTest, RebucketEqualProbBalancesMass) {
  std::vector<Bucket> buckets;
  for (int i = 0; i < 64; ++i) {
    buckets.push_back({static_cast<double>(i), 1.0 / 64});
  }
  Distribution d(std::move(buckets));
  Distribution r = d.Rebucket(4, RebucketStrategy::kEqualProb);
  ASSERT_EQ(r.size(), 4u);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(r.bucket(i).prob, 0.25, 0.02);
  }
}

TEST(DistributionTest, CdfDistanceZeroForSelf) {
  Distribution d({{1.0, 0.5}, {2.0, 0.5}});
  EXPECT_DOUBLE_EQ(d.CdfDistance(d), 0.0);
}

TEST(DistributionTest, CdfDistanceSymmetricAndBounded) {
  Distribution a({{1.0, 0.5}, {2.0, 0.5}});
  Distribution b({{1.5, 1.0}});
  EXPECT_DOUBLE_EQ(a.CdfDistance(b), b.CdfDistance(a));
  EXPECT_LE(a.CdfDistance(b), 1.0);
  EXPECT_GT(a.CdfDistance(b), 0.0);
}

TEST(DistributionTest, SampleRespectsDistribution) {
  Distribution d({{1.0, 0.2}, {2.0, 0.8}});
  Rng rng(7);
  int ones = 0;
  const int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) {
    double v = d.Sample(&rng);
    ASSERT_TRUE(v == 1.0 || v == 2.0);
    if (v == 1.0) ++ones;
  }
  EXPECT_NEAR(static_cast<double>(ones) / kTrials, 0.2, 0.02);
}

TEST(DistributionTest, ToStringRendersBuckets) {
  Distribution d = Distribution::TwoPoint(700, 0.2, 2000, 0.8);
  EXPECT_EQ(d.ToString(), "{700: 0.2, 2000: 0.8}");
}

// Property-style sweep: partial-expectation identities must hold at every
// support point for a variety of shapes.
class DistributionPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DistributionPropertyTest, PrefixSuffixIdentities) {
  Rng rng(GetParam());
  std::vector<Bucket> buckets;
  size_t n = static_cast<size_t>(rng.UniformInt(1, 40));
  for (size_t i = 0; i < n; ++i) {
    buckets.push_back({rng.Uniform(0, 1e6), rng.Uniform(0.01, 1.0)});
  }
  Distribution d(std::move(buckets));
  for (const Bucket& b : d.buckets()) {
    double x = b.value;
    EXPECT_NEAR(d.PrLeq(x) + d.PrGt(x), 1.0, 1e-12);
    EXPECT_NEAR(d.PrLt(x) + d.PrGeq(x), 1.0, 1e-12);
    EXPECT_NEAR(d.PartialExpectationLeq(x) + d.PartialExpectationGt(x),
                d.Mean(), 1e-9 * std::max(1.0, d.Mean()));
    // PE(X >= x) = Mean - PE(X <= x) + x·Pr(X = x).
    double point_mass = d.PrLeq(x) - d.PrLt(x);
    EXPECT_NEAR(d.PartialExpectationGeq(x),
                d.Mean() - d.PartialExpectationLeq(x) + x * point_mass,
                1e-9 * std::max(1.0, d.Mean()));
  }
}

TEST_P(DistributionPropertyTest, ExpectationLinearity) {
  Rng rng(GetParam() + 500);
  std::vector<Bucket> buckets;
  size_t n = static_cast<size_t>(rng.UniformInt(1, 30));
  for (size_t i = 0; i < n; ++i) {
    buckets.push_back({rng.Uniform(-100, 100), rng.Uniform(0.05, 1.0)});
  }
  Distribution d(std::move(buckets));
  double a = rng.Uniform(-5, 5), b = rng.Uniform(-50, 50);
  // E[aX + b] = a E[X] + b.
  EXPECT_NEAR(d.Expect([a, b](double x) { return a * x + b; }),
              a * d.Mean() + b, 1e-9 * (std::fabs(a * d.Mean() + b) + 1));
  // Map by a monotone affine function scales mean and stddev accordingly.
  Distribution mapped = d.Map([a, b](double x) { return a * x + b; });
  EXPECT_NEAR(mapped.Mean(), a * d.Mean() + b, 1e-9);
  EXPECT_NEAR(mapped.StdDev(), std::fabs(a) * d.StdDev(), 1e-9);
}

TEST_P(DistributionPropertyTest, ProductWithIsCommutativeInMean) {
  Rng rng(GetParam() + 900);
  auto random_dist = [&rng]() {
    std::vector<Bucket> buckets;
    size_t n = static_cast<size_t>(rng.UniformInt(1, 12));
    for (size_t i = 0; i < n; ++i) {
      buckets.push_back({rng.Uniform(0.1, 50), rng.Uniform(0.05, 1.0)});
    }
    return Distribution(std::move(buckets));
  };
  Distribution x = random_dist(), y = random_dist();
  auto mul = [](double a, double b) { return a * b; };
  Distribution xy = x.ProductWith(y, mul);
  Distribution yx = y.ProductWith(x, mul);
  EXPECT_NEAR(xy.Mean(), yx.Mean(), 1e-9 * xy.Mean());
  EXPECT_NEAR(xy.Mean(), x.Mean() * y.Mean(), 1e-9 * xy.Mean());
}

TEST_P(DistributionPropertyTest, RebucketCdfErrorShrinksWithBuckets) {
  Rng rng(GetParam() + 1000);
  std::vector<Bucket> buckets;
  for (int i = 0; i < 200; ++i) {
    buckets.push_back({rng.Uniform(0, 1000), rng.Uniform(0.1, 1.0)});
  }
  Distribution d(std::move(buckets));
  double err_coarse = d.CdfDistance(d.Rebucket(4));
  double err_fine = d.CdfDistance(d.Rebucket(64));
  EXPECT_LE(err_fine, err_coarse + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DistributionPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

// bucket()/get()/operator[] are unchecked in release builds (they sit in
// the DP hot loops — PR 4 removed the std::vector::at() bounds checks) and
// assert in debug builds. The death test pins the debug diagnostic; the
// in-range regression half runs in every build mode.
TEST(DistributionTest, BucketAccessorsAgreeInRange) {
  Distribution d = Distribution::TwoPoint(1.0, 0.25, 9.0, 0.75);
  for (size_t i = 0; i < d.size(); ++i) {
    EXPECT_EQ(d.bucket(i), d.get(i));
    EXPECT_EQ(d.bucket(i), d[i]);
  }
  EXPECT_DOUBLE_EQ(d[0].value, 1.0);
  EXPECT_DOUBLE_EQ(d[1].value, 9.0);
}

#ifndef NDEBUG
TEST(DistributionDeathTest, OutOfRangeBucketAssertsInDebugBuilds) {
  Distribution d = Distribution::PointMass(1.0);
  EXPECT_DEATH((void)d.bucket(5), "out of range");
  EXPECT_DEATH((void)d[2], "out of range");
}
#endif

}  // namespace
}  // namespace lec
