// Replays every seed in tests/regression_seeds.txt through the full fuzz
// invariant catalog. A seed lands in that file because it once violated
// an invariant (or was shipped as a counterexample artifact); it must
// replay clean forever after the fix.
#include "verify/fuzz_driver.h"

#include <gtest/gtest.h>

#include <fstream>
#include <string>
#include <vector>

namespace lec::verify {
namespace {

std::vector<std::string> LoadSeedLines() {
  std::ifstream in(std::string(LECOPT_SOURCE_DIR) +
                   "/tests/regression_seeds.txt");
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    while (!line.empty() && (line.back() == '\r' || line.back() == ' ')) {
      line.pop_back();
    }
    if (line.empty() || line[0] == '#') continue;
    lines.push_back(line);
  }
  return lines;
}

TEST(RegressionSeedsTest, EverySeedDecodesAndReplaysClean) {
  std::vector<std::string> seeds = LoadSeedLines();
  ASSERT_FALSE(seeds.empty()) << "regression_seeds.txt missing or empty";
  FuzzOptions options;
  options.mc_samples = 400;
  for (const std::string& text : seeds) {
    std::optional<FuzzCase> fuzz_case = FuzzCase::Decode(text);
    ASSERT_TRUE(fuzz_case.has_value()) << "malformed seed: " << text;
    EXPECT_EQ(fuzz_case->Encode(), text) << "non-canonical seed: " << text;
    size_t checked = 0;
    std::vector<FuzzViolation> violations =
        CheckCase(*fuzz_case, options, &checked);
    EXPECT_GT(checked, 0u);
    for (const FuzzViolation& v : violations) {
      ADD_FAILURE() << text << " violates " << v.invariant << ": " << v.detail;
    }
  }
}

}  // namespace
}  // namespace lec::verify
