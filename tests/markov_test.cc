#include "dist/markov.h"

#include <stdexcept>

#include <gtest/gtest.h>

#include "dist/builders.h"
#include "util/rng.h"

namespace lec {
namespace {

TEST(MarkovTest, StaticChainNeverMoves) {
  MarkovChain chain = MarkovChain::Static({100, 200, 300});
  Distribution d({{100, 0.5}, {300, 0.5}});
  Distribution after = chain.MarginalAfter(d, 10);
  EXPECT_TRUE(after == d);
}

TEST(MarkovTest, RowsAreNormalized) {
  MarkovChain chain({1, 2}, {{2, 2}, {1, 3}});
  EXPECT_DOUBLE_EQ(chain.transition()[0][0], 0.5);
  EXPECT_DOUBLE_EQ(chain.transition()[1][1], 0.75);
}

TEST(MarkovTest, ValidatesInput) {
  EXPECT_THROW(MarkovChain({}, {}), std::invalid_argument);
  EXPECT_THROW(MarkovChain({2, 1}, {{1, 0}, {0, 1}}), std::invalid_argument);
  EXPECT_THROW(MarkovChain({1, 2}, {{1, 0}}), std::invalid_argument);
  EXPECT_THROW(MarkovChain({1, 2}, {{1}, {1}}), std::invalid_argument);
  EXPECT_THROW(MarkovChain({1, 2}, {{0, 0}, {0, 1}}), std::invalid_argument);
  EXPECT_THROW(MarkovChain({1, 2}, {{-1, 2}, {0, 1}}), std::invalid_argument);
}

TEST(MarkovTest, StepConservesMass) {
  MarkovChain chain = MarkovChain::Drift({100, 200, 300, 400}, 0.5);
  Distribution d = Distribution::PointMass(200);
  Distribution next = chain.Step(d);
  double total = 0;
  for (const Bucket& b : next.buckets()) total += b.prob;
  EXPECT_NEAR(total, 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(next.PrLeq(100), 0.25);
  EXPECT_DOUBLE_EQ(next.PrLeq(200) - next.PrLeq(100), 0.5);
}

TEST(MarkovTest, StepRejectsOffStateValues) {
  MarkovChain chain = MarkovChain::Static({100, 200});
  Distribution d = Distribution::PointMass(150);
  EXPECT_THROW(chain.Step(d), std::invalid_argument);
}

TEST(MarkovTest, DriftReflectsAtBoundaries) {
  MarkovChain chain = MarkovChain::Drift({1, 2, 3}, 0.0);
  Distribution at_low = chain.Step(Distribution::PointMass(1));
  EXPECT_DOUBLE_EQ(at_low.PrLeq(2) - at_low.PrLeq(1), 1.0);  // all mass at 2
  Distribution at_high = chain.Step(Distribution::PointMass(3));
  EXPECT_DOUBLE_EQ(at_high.PrLeq(2), 1.0);
}

TEST(MarkovTest, RedrawFromConvergesToTargetInOneFullRedraw) {
  Distribution target({{100, 0.3}, {500, 0.7}});
  MarkovChain chain = MarkovChain::RedrawFrom(target, 1.0);
  Distribution start = Distribution::PointMass(100);
  Distribution next = chain.Step(start);
  EXPECT_LT(next.CdfDistance(target), 1e-12);
}

TEST(MarkovTest, StationaryOfRedrawIsTarget) {
  Distribution target({{100, 0.3}, {500, 0.7}});
  MarkovChain chain = MarkovChain::RedrawFrom(target, 0.25);
  Distribution pi = chain.Stationary();
  EXPECT_LT(pi.CdfDistance(target), 1e-9);
}

TEST(MarkovTest, StationaryOfSymmetricDriftIsUniformish) {
  MarkovChain chain = MarkovChain::Drift({1, 2, 3, 4, 5}, 0.5);
  Distribution pi = chain.Stationary();
  // Reflecting random walk: interior states carry twice the boundary mass.
  EXPECT_NEAR(pi.PrLeq(1), 1.0 / 8, 1e-6);
  EXPECT_NEAR(pi.PrLeq(2) - pi.PrLeq(1), 2.0 / 8, 1e-6);
}

TEST(MarkovTest, MarginalAfterZeroIsInitial) {
  MarkovChain chain = MarkovChain::Drift({1, 2, 3}, 0.9);
  Distribution d({{1, 0.5}, {3, 0.5}});
  EXPECT_TRUE(chain.MarginalAfter(d, 0) == d);
}

TEST(MarkovTest, TrajectoryStatesAreValidAndLengthCorrect) {
  MarkovChain chain = MarkovChain::Drift({10, 20, 30}, 0.5);
  Distribution init = Distribution::PointMass(20);
  Rng rng(42);
  std::vector<double> traj = chain.SampleTrajectory(init, 8, &rng);
  ASSERT_EQ(traj.size(), 8u);
  for (double v : traj) {
    EXPECT_TRUE(v == 10 || v == 20 || v == 30);
  }
  EXPECT_DOUBLE_EQ(traj[0], 20);
  // Adjacent states differ by at most one step.
  for (size_t i = 1; i < traj.size(); ++i) {
    EXPECT_LE(std::abs(traj[i] - traj[i - 1]), 10.0);
  }
}

TEST(MarkovTest, TrajectoryMarginalsMatchStepDistribution) {
  MarkovChain chain = MarkovChain::Drift({10, 20, 30}, 0.3);
  Distribution init({{10, 0.5}, {30, 0.5}});
  Rng rng(7);
  const int kTrials = 30000;
  int phase2_at_20 = 0;
  for (int t = 0; t < kTrials; ++t) {
    std::vector<double> traj = chain.SampleTrajectory(init, 3, &rng);
    if (traj[2] == 20) ++phase2_at_20;
  }
  Distribution analytic = chain.MarginalAfter(init, 2);
  double expected = analytic.PrLeq(20) - analytic.PrLeq(10);
  EXPECT_NEAR(static_cast<double>(phase2_at_20) / kTrials, expected, 0.01);
}

// Chapman-Kolmogorov: marginals compose over phase counts.
class MarkovPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MarkovPropertyTest, MarginalsCompose) {
  Rng rng(GetParam());
  size_t n = static_cast<size_t>(rng.UniformInt(2, 6));
  std::vector<double> states;
  double v = 0;
  for (size_t i = 0; i < n; ++i) states.push_back(v += rng.Uniform(1, 100));
  std::vector<std::vector<double>> t(n, std::vector<double>(n));
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) t[i][j] = rng.Uniform(0.01, 1.0);
  }
  MarkovChain chain(states, t);
  std::vector<Bucket> init;
  for (size_t i = 0; i < n; ++i) {
    init.push_back({states[i], rng.Uniform(0.1, 1.0)});
  }
  Distribution d(std::move(init));
  for (size_t a : {0u, 1u, 2u, 3u}) {
    for (size_t b : {0u, 1u, 2u}) {
      Distribution lhs = chain.MarginalAfter(d, a + b);
      Distribution rhs =
          chain.MarginalAfter(chain.MarginalAfter(d, a), b);
      EXPECT_LT(lhs.CdfDistance(rhs), 1e-12) << "a=" << a << " b=" << b;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MarkovPropertyTest,
                         ::testing::Range<uint64_t>(50, 60));

TEST(MarkovTest, SingleStateChainIsFixed) {
  MarkovChain chain = MarkovChain::Drift({42}, 0.5);
  Distribution d = Distribution::PointMass(42);
  EXPECT_TRUE(chain.Step(d) == d);
}

}  // namespace
}  // namespace lec
