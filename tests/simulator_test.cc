#include "exec/analytic_simulator.h"

#include <gtest/gtest.h>

#include "dist/builders.h"
#include "exec/environment.h"
#include "optimizer/algorithm_c.h"
#include "optimizer/system_r.h"

namespace lec {
namespace {

struct Example11Fixture {
  Catalog catalog;
  Query query;
  CostModel model;
  Distribution memory = Distribution::TwoPoint(2000, 0.8, 700, 0.2);

  Example11Fixture() {
    catalog.AddTable("A", 1'000'000);
    catalog.AddTable("B", 400'000);
    query.AddTable(0);
    query.AddTable(1);
    query.AddPredicate(0, 1, 3000.0 / (1e6 * 4e5));
    query.RequireOrder(0);
  }
};

TEST(EnvironmentTest, StaticSampleShape) {
  Example11Fixture f;
  EnvironmentModel env;
  env.memory = f.memory;
  Rng rng(1);
  Realization r = env.Sample(f.query, f.catalog, 3, &rng);
  EXPECT_EQ(r.table_pages.size(), 2u);
  EXPECT_EQ(r.selectivity.size(), 1u);
  ASSERT_EQ(r.memory_by_phase.size(), 3u);
  // Static memory: constant across phases.
  EXPECT_EQ(r.memory_by_phase[0], r.memory_by_phase[1]);
  EXPECT_EQ(r.memory_by_phase[1], r.memory_by_phase[2]);
  EXPECT_TRUE(r.memory_by_phase[0] == 2000 || r.memory_by_phase[0] == 700);
}

TEST(EnvironmentTest, MarkovSampleVariesAcrossPhases) {
  Example11Fixture f;
  EnvironmentModel env;
  env.memory = Distribution::PointMass(700);
  env.memory_chain = MarkovChain::RedrawFrom(
      Distribution::TwoPoint(700, 0.5, 2000, 0.5), 1.0);
  Rng rng(2);
  bool varied = false;
  for (int i = 0; i < 50 && !varied; ++i) {
    Realization r = env.Sample(f.query, f.catalog, 4, &rng);
    for (size_t t = 1; t < r.memory_by_phase.size(); ++t) {
      if (r.memory_by_phase[t] != r.memory_by_phase[0]) varied = true;
    }
  }
  EXPECT_TRUE(varied);
}

TEST(EnvironmentTest, DataParameterSamplingToggle) {
  Catalog catalog;
  Table t;
  t.name = "U";
  t.pages = 100;
  t.pages_dist = Distribution::TwoPoint(50, 0.5, 150, 0.5);
  catalog.AddTable(std::move(t));
  catalog.AddTable("V", 10);
  Query q;
  q.AddTable(0);
  q.AddTable(1);
  q.AddPredicate(0, 1, Distribution::TwoPoint(0.001, 0.5, 0.01, 0.5));
  EnvironmentModel env;
  env.sample_data_parameters = false;
  Rng rng(3);
  Realization r = env.Sample(q, catalog, 1, &rng);
  EXPECT_DOUBLE_EQ(r.table_pages[0], 100);
  EXPECT_DOUBLE_EQ(r.selectivity[0], 0.0055);
  env.sample_data_parameters = true;
  bool varied = false;
  for (int i = 0; i < 20; ++i) {
    Realization s = env.Sample(q, catalog, 1, &rng);
    if (s.table_pages[0] != 100) varied = true;
  }
  EXPECT_TRUE(varied);
}

TEST(SimulatorTest, MonteCarloMeanMatchesAnalyticEc) {
  Example11Fixture f;
  EnvironmentModel env;
  env.memory = f.memory;
  PlanPtr plan1 = MakeJoin(MakeAccess(0, 1e6), MakeAccess(1, 4e5),
                           JoinMethod::kSortMerge, {0}, 0, 3000);
  Rng rng(4);
  MonteCarloResult mc =
      SimulatePlanCost(plan1, f.query, f.catalog, f.model, env, 4000, &rng);
  double analytic = PlanExpectedCostStatic(plan1, f.query, f.catalog,
                                           f.model, f.memory);
  EXPECT_NEAR(mc.mean, analytic, 0.02 * analytic);
  EXPECT_EQ(mc.trials, 4000u);
  EXPECT_LE(mc.min, mc.mean);
  EXPECT_GE(mc.max, mc.mean);
}

TEST(SimulatorTest, PairedSimulationSharesEnvironments) {
  Example11Fixture f;
  EnvironmentModel env;
  env.memory = f.memory;
  PlanPtr plan1 = MakeJoin(MakeAccess(0, 1e6), MakeAccess(1, 4e5),
                           JoinMethod::kSortMerge, {0}, 0, 3000);
  PlanPtr plan2 = MakeSort(MakeJoin(MakeAccess(0, 1e6), MakeAccess(1, 4e5),
                                    JoinMethod::kGraceHash, {0}, kUnsorted,
                                    3000),
                           0);
  Rng rng(5);
  std::vector<MonteCarloResult> rs = SimulatePlansPaired(
      {plan1, plan2}, f.query, f.catalog, f.model, env, 4000, &rng);
  ASSERT_EQ(rs.size(), 2u);
  // The Example 1.1 claim, now measured: Plan 2 cheaper on average...
  EXPECT_LT(rs[1].mean, rs[0].mean);
  // ...even though Plan 1 is cheaper in the best case.
  EXPECT_LT(rs[0].min, rs[1].min);
  // Plan 2's cost is deterministic under this memory distribution.
  EXPECT_NEAR(rs[1].stddev, 0, 1e-9);
  EXPECT_GT(rs[0].stddev, 0);
}

TEST(SimulatorTest, LecPlanWinsInSimulationExample11) {
  Example11Fixture f;
  EnvironmentModel env;
  env.memory = f.memory;
  OptimizeResult lsc = OptimizeLscAtEstimate(f.query, f.catalog, f.model,
                                             f.memory, PointEstimate::kMode);
  OptimizeResult lec = OptimizeLecStatic(f.query, f.catalog, f.model,
                                         f.memory);
  Rng rng(6);
  std::vector<MonteCarloResult> rs = SimulatePlansPaired(
      {lsc.plan, lec.plan}, f.query, f.catalog, f.model, env, 5000, &rng);
  EXPECT_LT(rs[1].mean, rs[0].mean);
  // Measured advantage should be near the analytic 4.76M vs 4.212M
  // (scan + join + sort; Example 1.1's 3.36M vs 2.812M excludes scans).
  EXPECT_NEAR(rs[0].mean / rs[1].mean, 4.76e6 / 4.212e6, 0.02);
}

TEST(SimulatorTest, DynamicEnvironmentMonteCarloMatchesAnalytic) {
  Catalog catalog;
  catalog.AddTable("A", 10000);
  catalog.AddTable("B", 10000);
  catalog.AddTable("C", 10000);
  Query q;
  q.AddTable(0);
  q.AddTable(1);
  q.AddTable(2);
  q.AddPredicate(0, 1, 1e-4);
  q.AddPredicate(1, 2, 1e-4);
  CostModel model;
  MarkovChain chain = MarkovChain::Drift({40, 200, 1000}, 0.4);
  Distribution initial({{200, 0.6}, {1000, 0.4}});
  EnvironmentModel env;
  env.memory = initial;
  env.memory_chain = chain;
  PlanPtr ab = MakeJoin(MakeAccess(0, 10000), MakeAccess(1, 10000),
                        JoinMethod::kSortMerge, {0}, 0, 10000);
  PlanPtr abc = MakeJoin(ab, MakeAccess(2, 10000), JoinMethod::kSortMerge,
                         {1}, 1, 10000);
  Rng rng(7);
  MonteCarloResult mc =
      SimulatePlanCost(abc, q, catalog, model, env, 6000, &rng);
  double analytic =
      PlanExpectedCostDynamic(abc, q, catalog, model, chain, initial);
  EXPECT_NEAR(mc.mean, analytic, 0.03 * analytic);
}

}  // namespace
}  // namespace lec
