#include "dist/builders.h"

#include <cmath>
#include <stdexcept>

#include <gtest/gtest.h>

namespace lec {
namespace {

TEST(BuildersTest, UniformBucketsSpacingAndMass) {
  Distribution d = UniformBuckets(0, 100, 4);
  ASSERT_EQ(d.size(), 4u);
  EXPECT_DOUBLE_EQ(d.bucket(0).value, 12.5);
  EXPECT_DOUBLE_EQ(d.bucket(3).value, 87.5);
  for (size_t i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(d.bucket(i).prob, 0.25);
  EXPECT_DOUBLE_EQ(d.Mean(), 50.0);
}

TEST(BuildersTest, UniformBucketsSingle) {
  Distribution d = UniformBuckets(10, 20, 1);
  EXPECT_EQ(d.size(), 1u);
  EXPECT_DOUBLE_EQ(d.Mean(), 15.0);
}

TEST(BuildersTest, UniformBucketsValidation) {
  EXPECT_THROW(UniformBuckets(0, 1, 0), std::invalid_argument);
  EXPECT_THROW(UniformBuckets(5, 1, 3), std::invalid_argument);
}

TEST(BuildersTest, DiscretizedNormalCentersOnMean) {
  Distribution d = DiscretizedNormal(500, 100, 0, 1000, 51);
  EXPECT_NEAR(d.Mean(), 500, 2.0);
  EXPECT_NEAR(d.StdDev(), 100, 5.0);
  EXPECT_DOUBLE_EQ(d.Mode(), 500);
}

TEST(BuildersTest, DiscretizedNormalZeroStddevIsPointMass) {
  Distribution d = DiscretizedNormal(500, 0, 0, 1000, 51);
  EXPECT_EQ(d.size(), 1u);
  EXPECT_DOUBLE_EQ(d.Mean(), 500);
}

TEST(BuildersTest, DiscretizedNormalClampsPointMass) {
  Distribution d = DiscretizedNormal(5000, 0, 0, 1000, 10);
  EXPECT_DOUBLE_EQ(d.Mean(), 1000);
}

TEST(BuildersTest, DiscretizedLogNormalIsPositiveAndSkewed) {
  Distribution d = DiscretizedLogNormal(std::log(100), 1.0, 1, 10000, 64);
  EXPECT_GT(d.Min(), 0);
  // Heavy right tail: mean exceeds median-ish mode region.
  EXPECT_GT(d.Mean(), d.Mode());
}

TEST(BuildersTest, FromSamplesMatchesEmpiricalMean) {
  std::vector<double> samples;
  for (int i = 0; i < 1000; ++i) samples.push_back(static_cast<double>(i));
  Distribution d = FromSamples(samples, 16);
  EXPECT_LE(d.size(), 16u);
  EXPECT_NEAR(d.Mean(), 499.5, 1e-9);
  EXPECT_THROW(FromSamples({}, 4), std::invalid_argument);
}

TEST(BuildersTest, BimodalMemoryMatchesExample11) {
  Distribution d = BimodalMemory(2000, 0.8, 700);
  EXPECT_EQ(d.size(), 2u);
  EXPECT_DOUBLE_EQ(d.Mean(), 1740);
  EXPECT_DOUBLE_EQ(d.Mode(), 2000);
}

TEST(BuildersTest, BimodalMemoryDegenerateEnds) {
  EXPECT_EQ(BimodalMemory(2000, 1.0, 700).size(), 1u);
  EXPECT_EQ(BimodalMemory(2000, 0.0, 700).size(), 1u);
  EXPECT_THROW(BimodalMemory(2000, 1.5, 700), std::invalid_argument);
}

TEST(BuildersTest, UncertainSelectivityThreePoint) {
  Distribution d = UncertainSelectivity(0.01, 10);
  ASSERT_EQ(d.size(), 3u);
  EXPECT_DOUBLE_EQ(d.bucket(0).value, 0.001);
  EXPECT_DOUBLE_EQ(d.bucket(1).value, 0.01);
  EXPECT_DOUBLE_EQ(d.bucket(2).value, 0.1);
  EXPECT_DOUBLE_EQ(d.bucket(1).prob, 0.5);
}

TEST(BuildersTest, UncertainSelectivityClampsToOne) {
  Distribution d = UncertainSelectivity(0.5, 4);
  EXPECT_DOUBLE_EQ(d.Max(), 1.0);
}

TEST(BuildersTest, UncertainSelectivitySpreadOneIsPoint) {
  Distribution d = UncertainSelectivity(0.25, 1.0);
  EXPECT_EQ(d.size(), 1u);
}

TEST(BuildersTest, UncertainSelectivityValidation) {
  EXPECT_THROW(UncertainSelectivity(0.0, 2), std::invalid_argument);
  EXPECT_THROW(UncertainSelectivity(1.5, 2), std::invalid_argument);
  EXPECT_THROW(UncertainSelectivity(0.5, 0.5), std::invalid_argument);
}

}  // namespace
}  // namespace lec
