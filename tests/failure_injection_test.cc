// Failure-injection and boundary-condition tests: the library must fail
// loudly (typed exceptions) rather than silently degrade when its inputs
// or resource constraints are violated.
#include <gtest/gtest.h>

#include "cost/expected_cost.h"
#include "dist/builders.h"
#include "exec/engine_simulator.h"
#include "optimizer/algorithm_c.h"
#include "optimizer/system_r.h"
#include "storage/buffer_pool.h"
#include "storage/external_sort.h"
#include "storage/join_operators.h"
#include "query/generator.h"

namespace lec {
namespace {

TEST(FailureInjectionTest, OperatorsRespectTinyMemory) {
  // One buffer page: the operators must still terminate and produce
  // correct results, charging (a lot of) I/O, never crashing.
  Rng rng(1);
  TableData left = GenerateTable(6, 30, 0, &rng);
  TableData right = GenerateTable(4, 30, 0, &rng);
  JoinColumnSpec spec;
  TableData expected = NaiveJoinReference(left, right, spec);
  for (JoinMethod m : kAllJoinMethods) {
    BufferPool pool(1);
    TableData got;
    switch (m) {
      case JoinMethod::kSortMerge:
        got = SortMergeJoinOp(&pool, left, right, spec);
        break;
      case JoinMethod::kGraceHash:
        got = GraceHashJoinOp(&pool, left, right, spec);
        break;
      case JoinMethod::kNestedLoop:
        got = NestedLoopJoinOp(&pool, left, right, spec);
        break;
      case JoinMethod::kHybridHash:
        continue;  // analytic-only
    }
    EXPECT_EQ(got.num_tuples(), expected.num_tuples()) << ToString(m);
    EXPECT_GT(pool.total_io(), 0u);
  }
}

TEST(FailureInjectionTest, ReservationOverflowThrowsNotCorrupts) {
  BufferPool pool(4);
  BufferPool::Reservation r = pool.Reserve(4);
  EXPECT_THROW(pool.Reserve(1), OutOfMemoryError);
  // Pool state unchanged by the failed reservation.
  EXPECT_EQ(pool.reserved(), 4u);
}

TEST(FailureInjectionTest, DegenerateDistributions) {
  // A distribution whose mass concentrates after normalization of wildly
  // different weights must still behave.
  Distribution d({{100, 1e-15}, {200, 1.0}});
  EXPECT_EQ(d.size(), 1u);  // epsilon bucket dropped
  EXPECT_DOUBLE_EQ(d.Mean(), 200);
}

TEST(FailureInjectionTest, OptimizerOnImpossibleQueryThrows) {
  // Two disconnected components with cross products forbidden explicitly:
  // there is no legal plan; the optimizer must say so, not loop or return
  // garbage.
  Catalog catalog;
  catalog.AddTable("A", 10);
  catalog.AddTable("B", 10);
  Query q;
  q.AddTable(0);
  q.AddTable(1);
  // No predicates. With the System R heuristic the disconnected graph
  // relaxes the rule and a cross join is produced...
  CostModel model;
  EXPECT_NO_THROW(OptimizeLsc(q, catalog, model, 100));
  // ...but with NL/GH removed no method can evaluate a cross join at all.
  OptimizerOptions sm_only;
  sm_only.join_methods = {JoinMethod::kSortMerge};
  EXPECT_THROW(OptimizeLsc(q, catalog, model, 100, sm_only),
               std::runtime_error);
}

TEST(FailureInjectionTest, EngineRejectsMalformedPlans) {
  Catalog catalog;
  catalog.AddTable("A", 8);
  catalog.AddTable("B", 8);
  catalog.AddTable("C", 8);
  Query q;
  q.AddTable(0);
  q.AddTable(1);
  q.AddTable(2);
  q.AddPredicate(0, 1, 0.01);
  q.AddPredicate(1, 2, 0.01);
  Rng rng(2);
  EngineWorkload data = BuildChainEngineWorkload(q, catalog, &rng);
  // A "left-deep" plan joining non-adjacent chain positions first can't be
  // executed (no routable key) — must throw, not mis-join. Build it with
  // cross products allowed.
  PlanPtr ac = MakeJoin(MakeAccess(0, 8), MakeAccess(2, 8),
                        JoinMethod::kGraceHash, {}, kUnsorted, 64);
  PlanPtr acb = MakeJoin(ac, MakeAccess(1, 8), JoinMethod::kGraceHash,
                         {0, 1}, kUnsorted, 1);
  EXPECT_THROW(ExecutePlanOnEngine(acb, q, data, {16}),
               std::invalid_argument);
}

TEST(FailureInjectionTest, ZeroSizedRelationsInCostModel) {
  CostModel model;
  // Zero-page inputs are legal (empty intermediate results) and cost 0/|B|.
  EXPECT_DOUBLE_EQ(model.JoinCost(JoinMethod::kNestedLoop, 0, 10, 100), 10);
  EXPECT_DOUBLE_EQ(model.JoinCost(JoinMethod::kSortMerge, 0, 0, 100), 0);
  EXPECT_DOUBLE_EQ(model.SortCost(0, 5), 0);
}

TEST(FailureInjectionTest, RealizationTooShortMemoryVectorClamps) {
  // A realization with fewer memory phases than joins clamps to the last
  // value instead of reading out of bounds.
  Catalog catalog;
  catalog.AddTable("A", 100);
  catalog.AddTable("B", 100);
  catalog.AddTable("C", 100);
  Query q;
  q.AddTable(0);
  q.AddTable(1);
  q.AddTable(2);
  q.AddPredicate(0, 1, 0.01);
  q.AddPredicate(1, 2, 0.01);
  CostModel model;
  PlanPtr ab = MakeJoin(MakeAccess(0, 100), MakeAccess(1, 100),
                        JoinMethod::kGraceHash, {0}, kUnsorted, 100);
  PlanPtr abc = MakeJoin(ab, MakeAccess(2, 100), JoinMethod::kGraceHash,
                         {1}, kUnsorted, 100);
  Realization r = Realization::AtMeans(q, catalog, 500);  // one phase only
  EXPECT_NO_THROW(RealizedPlanCost(abc, q, model, r));
  Realization empty = r;
  empty.memory_by_phase.clear();
  EXPECT_THROW(RealizedPlanCost(abc, q, model, empty),
               std::invalid_argument);
}

TEST(FailureInjectionTest, SkewedDataDoesNotBreakSortMerge) {
  // All duplicate keys on both sides: quadratic output, merge join must
  // handle the full group cross product.
  TableData left, right;
  for (size_t i = 0; i < kTuplesPerPage; ++i) {
    left.Append({{5, 0}, static_cast<int64_t>(i)});
    right.Append({{5, 0}, static_cast<int64_t>(100 + i)});
  }
  BufferPool pool(2);
  JoinColumnSpec spec;
  TableData out = SortMergeJoinOp(&pool, left, right, spec);
  EXPECT_EQ(out.num_tuples(), kTuplesPerPage * kTuplesPerPage);
}

TEST(FailureInjectionTest, MarkovChainMassConservedUnderLongHorizon) {
  MarkovChain chain = MarkovChain::Drift({1, 2, 3, 4, 5, 6, 7, 8}, 0.25);
  Distribution d = Distribution::PointMass(4);
  for (int i = 0; i < 200; ++i) d = chain.Step(d);
  double mass = 0;
  for (const Bucket& b : d.buckets()) mass += b.prob;
  EXPECT_NEAR(mass, 1.0, 1e-9);
}

}  // namespace
}  // namespace lec
