#include "optimizer/parametric.h"

#include <gtest/gtest.h>

#include "cost/expected_cost.h"
#include "dist/builders.h"
#include "optimizer/algorithm_c.h"
#include "optimizer/system_r.h"
#include "query/generator.h"

namespace lec {
namespace {

struct Example11Fixture {
  Catalog catalog;
  Query query;
  CostModel model;
  Distribution memory = Distribution::TwoPoint(2000, 0.8, 700, 0.2);

  Example11Fixture() {
    catalog.AddTable("A", 1'000'000);
    catalog.AddTable("B", 400'000);
    query.AddTable(0);
    query.AddTable(1);
    query.AddPredicate(0, 1, 3000.0 / (1e6 * 4e5));
    query.RequireOrder(0);
  }
};

TEST(ParametricTest, CompilesOnePlanPerBucket) {
  Example11Fixture f;
  ParametricPlanSet set = ParametricPlanSet::Compile(f.query, f.catalog,
                                                     f.model, f.memory);
  EXPECT_EQ(set.num_buckets(), 2u);
  // Example 1.1: SM is best at 2000, GH+sort at 700 — two distinct plans.
  EXPECT_EQ(set.num_distinct_plans(), 2u);
}

TEST(ParametricTest, LookupPicksNearestBucket) {
  Example11Fixture f;
  ParametricPlanSet set = ParametricPlanSet::Compile(f.query, f.catalog,
                                                     f.model, f.memory);
  // Exactly at a representative.
  EXPECT_EQ(set.PlanFor(2000)->method, JoinMethod::kSortMerge);
  EXPECT_EQ(set.PlanFor(700)->kind, PlanNode::Kind::kSort);
  // Nearest-bucket behaviour between and beyond representatives.
  EXPECT_EQ(set.PlanFor(1900)->method, JoinMethod::kSortMerge);
  EXPECT_EQ(set.PlanFor(710)->kind, PlanNode::Kind::kSort);
  EXPECT_EQ(set.PlanFor(50)->kind, PlanNode::Kind::kSort);
  EXPECT_EQ(set.PlanFor(1e7)->method, JoinMethod::kSortMerge);
}

TEST(ParametricTest, StartupLookupMatchesPerBucketLsc) {
  Example11Fixture f;
  ParametricPlanSet set = ParametricPlanSet::Compile(f.query, f.catalog,
                                                     f.model, f.memory);
  double ec = ParametricStartupExpectedCost(set, f.query, f.catalog,
                                            f.model, f.memory);
  double manual = 0;
  for (const Bucket& m : f.memory.buckets()) {
    OptimizeResult lsc =
        OptimizeLsc(f.query, f.catalog, f.model, m.value);
    manual += m.prob * lsc.objective;
  }
  EXPECT_NEAR(ec, manual, 1e-9 * manual);
}

// The full strategy ordering: start-up lookup <= LEC <= LSC-at-mode, since
// the lookup strategy gets to observe the parameter.
class StrategyOrderingTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StrategyOrderingTest, LookupBeatsLecBeatsLsc) {
  Rng rng(GetParam());
  WorkloadOptions wopts;
  wopts.num_tables = static_cast<int>(3 + GetParam() % 4);
  wopts.shape = static_cast<JoinGraphShape>(GetParam() % 5);
  wopts.order_by_probability = 0.4;
  Workload w = GenerateWorkload(wopts, &rng);
  CostModel model;
  Distribution memory({{25, 0.25}, {250, 0.25}, {2500, 0.25},
                       {25000, 0.25}});
  ParametricPlanSet set =
      ParametricPlanSet::Compile(w.query, w.catalog, model, memory);
  double lookup_ec = ParametricStartupExpectedCost(set, w.query, w.catalog,
                                                   model, memory);
  double lec_ec =
      OptimizeLecStatic(w.query, w.catalog, model, memory).objective;
  OptimizeResult lsc = OptimizeLscAtEstimate(w.query, w.catalog, model,
                                             memory, PointEstimate::kMode);
  double lsc_ec =
      PlanExpectedCostStatic(lsc.plan, w.query, w.catalog, model, memory);
  EXPECT_LE(lookup_ec, lec_ec + 1e-9 * lec_ec);
  EXPECT_LE(lec_ec, lsc_ec + 1e-9 * lsc_ec);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StrategyOrderingTest,
                         ::testing::Range<uint64_t>(700, 720));

TEST(ParametricTest, SingleBucketDegeneratesToLsc) {
  Example11Fixture f;
  Distribution point = Distribution::PointMass(1500);
  ParametricPlanSet set =
      ParametricPlanSet::Compile(f.query, f.catalog, f.model, point);
  EXPECT_EQ(set.num_buckets(), 1u);
  OptimizeResult lsc = OptimizeLsc(f.query, f.catalog, f.model, 1500);
  EXPECT_TRUE(PlanEquals(set.PlanFor(99999), lsc.plan));
}

}  // namespace
}  // namespace lec
