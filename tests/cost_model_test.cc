#include "cost/cost_model.h"

#include <cmath>
#include <stdexcept>

#include <gtest/gtest.h>

namespace lec {
namespace {

// Example 1.1 sizes: A = 1,000,000 pages, B = 400,000 pages.
constexpr double kA = 1'000'000;
constexpr double kB = 400'000;

TEST(CostModelTest, SortMergeThreeRegimes) {
  CostModel m;
  // sqrt(1e6) = 1000, cbrt(1e6) = 100.
  EXPECT_DOUBLE_EQ(m.JoinCost(JoinMethod::kSortMerge, kA, kB, 2000),
                   2 * (kA + kB));
  EXPECT_DOUBLE_EQ(m.JoinCost(JoinMethod::kSortMerge, kA, kB, 700),
                   4 * (kA + kB));
  EXPECT_DOUBLE_EQ(m.JoinCost(JoinMethod::kSortMerge, kA, kB, 50),
                   6 * (kA + kB));
}

TEST(CostModelTest, SortMergeBoundariesAreRightContinuousDown) {
  CostModel m;
  // M > sqrt(L) strictly for the cheap regime; at exactly sqrt(L) we pay 4x.
  EXPECT_DOUBLE_EQ(m.JoinCost(JoinMethod::kSortMerge, kA, kB, 1000),
                   4 * (kA + kB));
  EXPECT_DOUBLE_EQ(m.JoinCost(JoinMethod::kSortMerge, kA, kB, 1000.01),
                   2 * (kA + kB));
  EXPECT_DOUBLE_EQ(m.JoinCost(JoinMethod::kSortMerge, kA, kB, 100),
                   6 * (kA + kB));
}

TEST(CostModelTest, SortMergeUsesLargerRelation) {
  CostModel m;
  // Swapping inputs must not change the cost (L = max).
  EXPECT_DOUBLE_EQ(m.JoinCost(JoinMethod::kSortMerge, kA, kB, 700),
                   m.JoinCost(JoinMethod::kSortMerge, kB, kA, 700));
}

TEST(CostModelTest, GraceHashUsesSmallerRelation) {
  CostModel m;
  // sqrt(400000) ~ 632.5 — Example 1.1's "greater than 633 pages".
  EXPECT_DOUBLE_EQ(m.JoinCost(JoinMethod::kGraceHash, kA, kB, 700),
                   2 * (kA + kB));
  EXPECT_DOUBLE_EQ(m.JoinCost(JoinMethod::kGraceHash, kA, kB, 2000),
                   2 * (kA + kB));
  EXPECT_DOUBLE_EQ(m.JoinCost(JoinMethod::kGraceHash, kA, kB, 600),
                   4 * (kA + kB));
  // cbrt(400000) ~ 73.7.
  EXPECT_DOUBLE_EQ(m.JoinCost(JoinMethod::kGraceHash, kA, kB, 50),
                   6 * (kA + kB));
  EXPECT_DOUBLE_EQ(m.JoinCost(JoinMethod::kGraceHash, kA, kB, 700),
                   m.JoinCost(JoinMethod::kGraceHash, kB, kA, 700));
}

TEST(CostModelTest, NestedLoopTwoRegimes) {
  CostModel m;
  // S = min = 100; fits when M >= 102.
  EXPECT_DOUBLE_EQ(m.JoinCost(JoinMethod::kNestedLoop, 1000, 100, 102),
                   1100);
  EXPECT_DOUBLE_EQ(m.JoinCost(JoinMethod::kNestedLoop, 1000, 100, 101),
                   1000 + 1000 * 100);
  // Outer is always the left input in the expensive regime.
  EXPECT_DOUBLE_EQ(m.JoinCost(JoinMethod::kNestedLoop, 100, 1000, 101),
                   100 + 100 * 1000);
}

TEST(CostModelTest, JoinCostValidation) {
  CostModel m;
  EXPECT_THROW(m.JoinCost(JoinMethod::kSortMerge, -1, 10, 100),
               std::invalid_argument);
  EXPECT_THROW(m.JoinCost(JoinMethod::kSortMerge, 10, 10, 0),
               std::invalid_argument);
}

TEST(CostModelTest, SortCostZeroWhenFits) {
  CostModel m;
  EXPECT_DOUBLE_EQ(m.SortCost(1000, 1000), 0);
  EXPECT_DOUBLE_EQ(m.SortCost(0, 50), 0);
}

TEST(CostModelTest, SortCostExample11Result) {
  CostModel m;
  // Example 1.1: sorting the 3000-page result with 2000 pages of memory:
  // 2 runs, one merge pass -> 2 * 3000 * 2 = 12000 I/Os.
  EXPECT_DOUBLE_EQ(m.SortCost(3000, 2000), 12000);
  // With 700 pages: 5 runs still merge in one pass (fan-in 699).
  EXPECT_DOUBLE_EQ(m.SortCost(3000, 700), 12000);
}

TEST(CostModelTest, SortCostExtraPassesWhenMemoryTiny) {
  CostModel m;
  // 1000 pages, 4 buffer pages: 250 runs; fan-in 3 -> ceil(log3 250) = 6.
  EXPECT_DOUBLE_EQ(m.SortCost(1000, 4), 2.0 * 1000 * (1 + 6));
}

TEST(CostModelTest, SortCostValidation) {
  CostModel m;
  EXPECT_THROW(m.SortCost(-1, 10), std::invalid_argument);
  EXPECT_THROW(m.SortCost(10, 0), std::invalid_argument);
}

TEST(CostModelTest, SortedInputDiscountOffByDefault) {
  CostModel m;
  EXPECT_DOUBLE_EQ(
      m.JoinCost(JoinMethod::kSortMerge, kA, kB, 2000, true, true),
      2 * (kA + kB));
}

TEST(CostModelTest, SortedInputDiscountWhenEnabled) {
  CostModelOptions opts;
  opts.sorted_input_discount = true;
  CostModel m(opts);
  // Both sorted: a single merge read of each side.
  EXPECT_DOUBLE_EQ(
      m.JoinCost(JoinMethod::kSortMerge, kA, kB, 2000, true, true), kA + kB);
  // Only left sorted: left contributes 1x, right the regime multiplier.
  EXPECT_DOUBLE_EQ(
      m.JoinCost(JoinMethod::kSortMerge, kA, kB, 2000, true, false),
      kA + 2 * kB);
  // Discount never applies to hash join.
  EXPECT_DOUBLE_EQ(
      m.JoinCost(JoinMethod::kGraceHash, kA, kB, 2000, true, true),
      2 * (kA + kB));
}

TEST(CostModelTest, MemoryBreakpointsMatchDiscontinuities) {
  CostModel m;
  std::vector<double> sm =
      m.MemoryBreakpoints(JoinMethod::kSortMerge, kA, kB);
  ASSERT_EQ(sm.size(), 2u);
  EXPECT_DOUBLE_EQ(sm[0], std::cbrt(kA));
  EXPECT_DOUBLE_EQ(sm[1], std::sqrt(kA));
  std::vector<double> gh =
      m.MemoryBreakpoints(JoinMethod::kGraceHash, kA, kB);
  EXPECT_DOUBLE_EQ(gh[1], std::sqrt(kB));
  std::vector<double> nl =
      m.MemoryBreakpoints(JoinMethod::kNestedLoop, 1000, 100);
  ASSERT_EQ(nl.size(), 1u);
  EXPECT_DOUBLE_EQ(nl[0], 102);
}

// Property: at each breakpoint the cost actually changes, and between
// breakpoints it is constant.
class BreakpointPropertyTest
    : public ::testing::TestWithParam<JoinMethod> {};

TEST_P(BreakpointPropertyTest, CostsConstantBetweenBreakpoints) {
  CostModel m;
  JoinMethod method = GetParam();
  double left = 90'000, right = 250'000;
  std::vector<double> bps = m.MemoryBreakpoints(method, left, right);
  ASSERT_FALSE(bps.empty());
  std::vector<double> probes;
  probes.push_back(bps.front() / 2);
  for (size_t i = 0; i + 1 < bps.size(); ++i) {
    probes.push_back((bps[i] + bps[i + 1]) / 2);
  }
  probes.push_back(bps.back() * 2);
  // Costs at consecutive probes differ (a breakpoint separates them)...
  for (size_t i = 0; i + 1 < probes.size(); ++i) {
    EXPECT_NE(m.JoinCost(method, left, right, probes[i]),
              m.JoinCost(method, left, right, probes[i + 1]));
  }
  // ...but tiny perturbations within a cell do not change the cost.
  for (double p : probes) {
    EXPECT_EQ(m.JoinCost(method, left, right, p),
              m.JoinCost(method, left, right, p * 1.0001));
  }
}

INSTANTIATE_TEST_SUITE_P(AllMethods, BreakpointPropertyTest,
                         ::testing::ValuesIn(kAllJoinMethods));

TEST(CostModelTest, FactorsMonotoneInMemory) {
  EXPECT_EQ(CostModel::SortMergeFactor(2000, 1e6), 2);
  EXPECT_EQ(CostModel::SortMergeFactor(500, 1e6), 4);
  EXPECT_EQ(CostModel::SortMergeFactor(10, 1e6), 6);
  EXPECT_EQ(CostModel::GraceHashFactor(700, 4e5), 2);
  EXPECT_EQ(CostModel::GraceHashFactor(600, 4e5), 4);
  EXPECT_EQ(CostModel::GraceHashFactor(10, 4e5), 6);
}

}  // namespace
}  // namespace lec
