#include "cost/fast_expected_cost.h"

#include <gtest/gtest.h>

#include "cost/expected_cost.h"
#include "dist/builders.h"
#include "util/rng.h"

namespace lec {
namespace {

Distribution RandomSizeDist(Rng* rng, size_t max_buckets) {
  std::vector<Bucket> buckets;
  size_t n = static_cast<size_t>(rng->UniformInt(
      1, static_cast<int64_t>(max_buckets)));
  for (size_t i = 0; i < n; ++i) {
    buckets.push_back({rng->LogUniform(10, 1e6), rng->Uniform(0.05, 1.0)});
  }
  return Distribution(std::move(buckets));
}

Distribution RandomMemoryDist(Rng* rng, size_t max_buckets) {
  std::vector<Bucket> buckets;
  size_t n = static_cast<size_t>(rng->UniformInt(
      1, static_cast<int64_t>(max_buckets)));
  for (size_t i = 0; i < n; ++i) {
    buckets.push_back({rng->LogUniform(2, 5000), rng->Uniform(0.05, 1.0)});
  }
  return Distribution(std::move(buckets));
}

TEST(FastExpectedCostTest, SortMergePointMassesMatchFormula) {
  CostModel model;
  Distribution a = Distribution::PointMass(1e6);
  Distribution b = Distribution::PointMass(4e5);
  Distribution m = Distribution::TwoPoint(2000, 0.8, 700, 0.2);
  EXPECT_DOUBLE_EQ(FastExpectedSortMergeCost(a, b, m),
                   ExpectedJoinCostFixedSizes(model, JoinMethod::kSortMerge,
                                              1e6, 4e5, m));
}

TEST(FastExpectedCostTest, NestedLoopPointMassesMatchFormula) {
  CostModel model;
  Distribution a = Distribution::PointMass(1000);
  Distribution b = Distribution::PointMass(100);
  Distribution m = Distribution::TwoPoint(50, 0.5, 200, 0.5);
  EXPECT_DOUBLE_EQ(FastExpectedNestedLoopCost(a, b, m),
                   ExpectedJoinCostFixedSizes(model, JoinMethod::kNestedLoop,
                                              1000, 100, m));
}

TEST(FastExpectedCostTest, GraceHashPointMassesMatchFormula) {
  CostModel model;
  Distribution a = Distribution::PointMass(1e6);
  Distribution b = Distribution::PointMass(4e5);
  Distribution m = Distribution::TwoPoint(700, 0.5, 600, 0.5);
  EXPECT_DOUBLE_EQ(FastExpectedGraceHashCost(a, b, m),
                   ExpectedJoinCostFixedSizes(model, JoinMethod::kGraceHash,
                                              1e6, 4e5, m));
}

TEST(FastExpectedCostTest, TieBetweenInputSizesHandled) {
  CostModel model;
  // |A| and |B| share support values, exercising the A<=B / A>B split.
  Distribution a = Distribution::TwoPoint(100, 0.5, 200, 0.5);
  Distribution b = Distribution::TwoPoint(100, 0.5, 200, 0.5);
  Distribution m = Distribution::TwoPoint(9, 0.5, 16, 0.5);
  for (JoinMethod method : kAllJoinMethods) {
    EXPECT_NEAR(FastExpectedJoinCost(method, a, b, m),
                ExpectedJoinCost(model, method, a, b, m), 1e-6)
        << ToString(method);
  }
}

TEST(FastExpectedCostTest, MemoryExactlyAtThresholds) {
  CostModel model;
  // L = 10000: sqrt = 100, cbrt ~ 21.544; S = 100: S+2 = 102.
  Distribution a = Distribution::PointMass(10000);
  Distribution b = Distribution::PointMass(100);
  Distribution m({{std::cbrt(10000.0), 0.25},
                  {100, 0.25},
                  {102, 0.25},
                  {103, 0.25}});
  for (JoinMethod method : kAllJoinMethods) {
    EXPECT_NEAR(FastExpectedJoinCost(method, a, b, m),
                ExpectedJoinCost(model, method, a, b, m), 1e-6)
        << ToString(method);
  }
}

// The central §3.6 verification: the linear-time algorithms agree exactly
// with the naive triple enumeration on random distributions.
class FastEcPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FastEcPropertyTest, MatchesNaiveEnumeration) {
  Rng rng(GetParam());
  CostModel model;
  for (int trial = 0; trial < 20; ++trial) {
    Distribution a = RandomSizeDist(&rng, 12);
    Distribution b = RandomSizeDist(&rng, 12);
    Distribution m = RandomMemoryDist(&rng, 12);
    for (JoinMethod method : kAllJoinMethods) {
      double fast = FastExpectedJoinCost(method, a, b, m);
      double naive = ExpectedJoinCost(model, method, a, b, m);
      EXPECT_NEAR(fast, naive, 1e-9 * std::max(1.0, naive))
          << ToString(method) << " seed=" << GetParam()
          << " trial=" << trial;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FastEcPropertyTest,
                         ::testing::Range<uint64_t>(1, 16));

TEST(FastExpectedCostTest, LinearWorkNotQuadraticInspection) {
  // Not a timing test: verify correctness holds at a bucket count where the
  // naive enumeration would be ~1e6 evaluations while fast is ~300.
  Rng rng(99);
  CostModel model;
  Distribution a = RandomSizeDist(&rng, 1).Rebucket(1);
  std::vector<Bucket> av, bv, mv;
  for (int i = 0; i < 100; ++i) {
    av.push_back({rng.LogUniform(10, 1e6), 0.01});
    bv.push_back({rng.LogUniform(10, 1e6), 0.01});
    mv.push_back({rng.LogUniform(2, 5000), 0.01});
  }
  Distribution big_a(std::move(av)), big_b(std::move(bv)),
      big_m(std::move(mv));
  for (JoinMethod method : kAllJoinMethods) {
    double fast = FastExpectedJoinCost(method, big_a, big_b, big_m);
    double naive = ExpectedJoinCost(model, method, big_a, big_b, big_m);
    EXPECT_NEAR(fast, naive, 1e-9 * std::max(1.0, naive));
  }
}

}  // namespace
}  // namespace lec
