// The wire layer's contract (service/wire_server.h): the codecs
// round-trip bit-exactly in both encodings, a socket round trip serves
// bit-identically to a direct facade run, deadlines and backpressure
// survive the wire, and a malformed payload answers an error WITHOUT
// poisoning the connection.
#include "service/wire_server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <thread>

#include "query/generator.h"
#include "util/rng.h"

namespace lec {
namespace {

uint64_t Bits(double v) {
  uint64_t b;
  std::memcpy(&b, &v, sizeof(b));
  return b;
}

serde::ServeRequest MakeRequest(uint64_t seed,
                                const std::string& strategy = "lec_static") {
  Rng rng(seed);
  WorkloadOptions wopts;
  wopts.num_tables = 5;
  wopts.shape = JoinGraphShape::kChain;
  wopts.selectivity_spread = 3.0;
  wopts.table_size_spread = 2.0;
  serde::ServeRequest request;
  request.strategy = strategy;
  request.workload = GenerateWorkload(wopts, &rng);
  request.memory = Distribution({{64, 0.25}, {512, 0.5}, {4096, 0.25}});
  request.seed = seed;
  return request;
}

OptimizeResult Reference(const serde::ServeRequest& r, StrategyId id) {
  CostModel model;
  Optimizer optimizer;
  OptimizeRequest req;
  req.query = &r.workload.query;
  req.catalog = &r.workload.catalog;
  req.model = &model;
  req.memory = &r.memory;
  req.options = r.options;
  req.lsc_estimate = r.lsc_estimate;
  req.top_c = r.top_c;
  if (r.chain) req.chain = &*r.chain;
  req.seed = r.seed;
  req.randomized_restarts = r.randomized_restarts;
  req.randomized_patience = r.randomized_patience;
  req.sample_predicate = r.sample_predicate;
  return optimizer.Optimize(id, req);
}

void ExpectBitEqual(const OptimizeResult& a, const OptimizeResult& b) {
  EXPECT_EQ(Bits(a.objective), Bits(b.objective));
  EXPECT_EQ(a.candidates_considered, b.candidates_considered);
  EXPECT_EQ(a.cost_evaluations, b.cost_evaluations);
  EXPECT_EQ(a.candidates_by_phase, b.candidates_by_phase);
  EXPECT_TRUE(PlanEquals(a.plan, b.plan));
}

TEST(WireCodecTest, RequestRoundTripsInBothEncodings) {
  serde::ServeRequest request = MakeRequest(1, "lsc");
  for (serde::Encoding enc :
       {serde::Encoding::kText, serde::Encoding::kBinary}) {
    std::string payload = EncodeWireRequest(request, 1.5, enc);
    WireRequest decoded = DecodeWireRequest(payload);
    EXPECT_EQ(decoded.encoding, enc);
    EXPECT_DOUBLE_EQ(decoded.deadline_budget_seconds, 1.5);
    EXPECT_EQ(decoded.request.strategy, "lsc");
    EXPECT_EQ(decoded.request.seed, request.seed);
    // The embedded ServeRequest uses the PR-5 serde, so re-serializing it
    // canonically must reproduce the original's canonical bytes.
    EXPECT_EQ(serde::ToString(decoded.request), serde::ToString(request));
  }
  // The no-deadline sentinel survives.
  WireRequest open = DecodeWireRequest(EncodeWireRequest(request));
  EXPECT_TRUE(std::isinf(open.deadline_budget_seconds));
  // A zero budget is not the sentinel.
  WireRequest zero = DecodeWireRequest(EncodeWireRequest(request, 0.0));
  EXPECT_DOUBLE_EQ(zero.deadline_budget_seconds, 0.0);
}

TEST(WireCodecTest, ResponseRoundTripsEveryStatusAndResultBits) {
  OptimizeResult result = Reference(MakeRequest(2), StrategyId::kLecStatic);
  for (serde::Encoding enc :
       {serde::Encoding::kText, serde::Encoding::kBinary}) {
    WireResponse ok;
    ok.status = ServeStatus::kOk;
    ok.degraded = true;
    ok.coalesced = true;
    ok.result = result;
    WireResponse back = DecodeWireResponse(EncodeWireResponse(ok, enc));
    EXPECT_EQ(back.status, ServeStatus::kOk);
    EXPECT_TRUE(back.degraded);
    EXPECT_TRUE(back.coalesced);
    ASSERT_TRUE(back.result.has_value());
    ExpectBitEqual(*back.result, result);

    WireResponse rejected;
    rejected.status = ServeStatus::kRejected;
    rejected.error = "admission queue full";
    back = DecodeWireResponse(EncodeWireResponse(rejected, enc));
    EXPECT_EQ(back.status, ServeStatus::kRejected);
    EXPECT_EQ(back.error, "admission queue full");
    EXPECT_FALSE(back.result.has_value());
  }
  EXPECT_THROW(DecodeWireResponse("not a frame"), serde::SerdeError);
  EXPECT_THROW(DecodeWireRequest(""), serde::SerdeError);
}

TEST(WireServerTest, SocketRoundTripServesBitIdenticalInBothEncodings) {
  ServePipeline pipeline(ServePipeline::Options{});
  WireServer server(&pipeline, WireServer::Options{});
  ASSERT_GT(server.port(), 0);
  serde::ServeRequest request = MakeRequest(3);
  OptimizeResult expected = Reference(request, StrategyId::kLecStatic);

  WireClient client(server.port());
  for (serde::Encoding enc :
       {serde::Encoding::kText, serde::Encoding::kBinary}) {
    WireResponse response = client.Call(
        request, std::numeric_limits<double>::infinity(), enc);
    ASSERT_EQ(response.status, ServeStatus::kOk);
    EXPECT_FALSE(response.degraded);
    ASSERT_TRUE(response.result.has_value());
    ExpectBitEqual(*response.result, expected);
  }
  server.Stop();
  EXPECT_EQ(server.stats().connections, 1u);
  EXPECT_EQ(server.stats().requests, 2u);
}

TEST(WireServerTest, DeadlineBudgetDegradesOverTheWire) {
  // A headroom floor far above any real compute time forces every
  // finite-budget request down the degradation path — deterministically,
  // without depending on wall-clock speed.
  ServePipeline::Options opts;
  opts.min_degrade_headroom_seconds = 1e6;
  ServePipeline pipeline(opts);
  WireServer server(&pipeline, WireServer::Options{});
  serde::ServeRequest request = MakeRequest(4);

  WireClient client(server.port());
  WireResponse tight = client.Call(request, 0.05);
  ASSERT_EQ(tight.status, ServeStatus::kOk);
  EXPECT_TRUE(tight.degraded);
  ASSERT_TRUE(tight.result.has_value());
  ExpectBitEqual(*tight.result, Reference(request, StrategyId::kLsc));

  WireResponse open = client.Call(request);  // no deadline — full fidelity
  ASSERT_EQ(open.status, ServeStatus::kOk);
  EXPECT_FALSE(open.degraded);
  ExpectBitEqual(*open.result, Reference(request, StrategyId::kLecStatic));
}

TEST(WireServerTest, BackpressureRejectionCrossesTheWire) {
  // Gate the only worker so the 1-slot queue fills: a third concurrent
  // request must come back kRejected through the socket.
  std::mutex mu;
  std::condition_variable cv;
  bool open = false;
  int entered = 0;
  Optimizer inner;
  Optimizer gated;
  gated.Register(StrategyId::kLecStatic, [&](OptimizeRequest req) {
    {
      std::unique_lock<std::mutex> lock(mu);
      ++entered;
      cv.notify_all();
      cv.wait(lock, [&] { return open; });
    }
    req.options.plan_cache = nullptr;
    return inner.Optimize(StrategyId::kLecStatic, req);
  });
  ServePipeline::Options opts;
  opts.workers = 1;
  opts.queue_capacity = 1;
  opts.optimizer = &gated;
  ServePipeline pipeline(opts);
  WireServer server(&pipeline, WireServer::Options{});

  std::atomic<int> ok{0};
  auto call = [&](uint64_t seed) {
    WireClient client(server.port());
    if (client.Call(MakeRequest(seed)).status == ServeStatus::kOk) ++ok;
  };
  std::thread a(call, 10);
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return entered >= 1; });
  }
  std::thread b(call, 11);
  // B holds the only queue slot once its protocol thread submits; poll
  // the pipeline until it does, then C must bounce.
  while (pipeline.queue_depth() < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  WireClient client(server.port());
  WireResponse rejected = client.Call(MakeRequest(12));
  EXPECT_EQ(rejected.status, ServeStatus::kRejected);
  EXPECT_FALSE(rejected.result.has_value());
  {
    std::lock_guard<std::mutex> lock(mu);
    open = true;
  }
  cv.notify_all();
  a.join();
  b.join();
  EXPECT_EQ(ok.load(), 2);
}

TEST(WireServerTest, MalformedPayloadAnswersErrorAndKeepsConnection) {
  ServePipeline pipeline(ServePipeline::Options{});
  WireServer server(&pipeline, WireServer::Options{});
  WireClient client(server.port());

  WireResponse garbage =
      DecodeWireResponse(client.CallRaw("lecser but then nonsense"));
  EXPECT_EQ(garbage.status, ServeStatus::kError);
  EXPECT_NE(garbage.error.find("malformed"), std::string::npos);

  // The frame boundary kept the stream in sync: the SAME connection still
  // serves a well-formed request.
  serde::ServeRequest request = MakeRequest(5);
  WireResponse response = client.Call(request);
  ASSERT_EQ(response.status, ServeStatus::kOk);
  ExpectBitEqual(*response.result, Reference(request, StrategyId::kLecStatic));

  server.Stop();
  EXPECT_EQ(server.stats().protocol_errors, 1u);
  EXPECT_EQ(server.stats().requests, 2u);
}

TEST(WireServerTest, SequentialRequestsReuseOneConnection) {
  PlanCache cache;
  ServePipeline::Options opts;
  opts.plan_cache = &cache;
  ServePipeline pipeline(opts);
  WireServer server(&pipeline, WireServer::Options{});
  serde::ServeRequest request = MakeRequest(6);
  OptimizeResult expected = Reference(request, StrategyId::kLecStatic);

  WireClient client(server.port());
  for (int i = 0; i < 5; ++i) {
    serde::Encoding enc =
        i % 2 == 0 ? serde::Encoding::kText : serde::Encoding::kBinary;
    WireResponse response =
        client.Call(request, std::numeric_limits<double>::infinity(), enc);
    ASSERT_EQ(response.status, ServeStatus::kOk);
    ExpectBitEqual(*response.result, expected);
  }
  server.Stop();
  EXPECT_EQ(server.stats().connections, 1u);
  EXPECT_EQ(server.stats().requests, 5u);
  // 1 miss + 4 hits: the wire path shares the pipeline's plan cache.
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 4u);
}

}  // namespace
}  // namespace lec
