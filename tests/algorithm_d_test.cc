#include "optimizer/algorithm_d.h"

#include <gtest/gtest.h>

#include "cost/expected_cost.h"
#include "optimizer/algorithm_c.h"
#include "optimizer/exhaustive.h"
#include "query/generator.h"

namespace lec {
namespace {

TEST(AlgorithmDTest, ReducesToAlgorithmCWhenDataCertain) {
  // With point-mass sizes and selectivities, only memory is uncertain and
  // Algorithm D must coincide with Algorithm C.
  Rng rng(1);
  WorkloadOptions wopts;
  wopts.num_tables = 5;
  wopts.order_by_probability = 0.5;
  Workload w = GenerateWorkload(wopts, &rng);
  CostModel model;
  Distribution memory({{30, 0.3}, {500, 0.4}, {4000, 0.3}});
  OptimizeResult d = OptimizeAlgorithmD(w.query, w.catalog, model, memory);
  OptimizeResult c = OptimizeLecStatic(w.query, w.catalog, model, memory);
  EXPECT_NEAR(d.objective, c.objective, 1e-9 * std::max(1.0, c.objective));
  EXPECT_TRUE(PlanEquals(d.plan, c.plan));
}

TEST(AlgorithmDTest, FastAndNaivePathsAgree) {
  Rng rng(2);
  WorkloadOptions wopts;
  wopts.num_tables = 4;
  wopts.selectivity_spread = 8.0;
  wopts.table_size_spread = 3.0;
  wopts.order_by_probability = 0.5;
  Workload w = GenerateWorkload(wopts, &rng);
  CostModel model;
  Distribution memory({{25, 0.25}, {250, 0.5}, {2500, 0.25}});
  OptimizerOptions fast_opts;
  fast_opts.use_fast_ec = true;
  OptimizerOptions naive_opts;
  naive_opts.use_fast_ec = false;
  OptimizeResult fast =
      OptimizeAlgorithmD(w.query, w.catalog, model, memory, fast_opts);
  OptimizeResult naive =
      OptimizeAlgorithmD(w.query, w.catalog, model, memory, naive_opts);
  EXPECT_NEAR(fast.objective, naive.objective,
              1e-6 * std::max(1.0, naive.objective));
  // Ties may break differently between the two numeric paths, so compare
  // the chosen plans by expected cost rather than structure.
  double ec_fast = PlanExpectedCostMultiParam(fast.plan, w.query, w.catalog,
                                              model, memory, 256);
  double ec_naive = PlanExpectedCostMultiParam(naive.plan, w.query,
                                               w.catalog, model, memory, 256);
  EXPECT_NEAR(ec_fast, ec_naive, 1e-6 * std::max(1.0, ec_naive));
  // The fast path does far fewer formula evaluations.
  EXPECT_LT(fast.cost_evaluations, naive.cost_evaluations);
}

// With enough size buckets (exact propagation), Algorithm D's objective
// matches the exhaustive multi-parameter EC oracle.
class AlgorithmDOracleTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AlgorithmDOracleTest, MatchesExhaustiveMultiParamEc) {
  Rng rng(GetParam());
  WorkloadOptions wopts;
  wopts.num_tables = 3;
  wopts.shape = JoinGraphShape::kChain;
  wopts.selectivity_spread = 5.0;
  wopts.table_size_spread = 2.0;
  wopts.order_by_probability = 0.5;
  Workload w = GenerateWorkload(wopts, &rng);
  CostModel model;
  Distribution memory({{30, 0.5}, {800, 0.5}});
  OptimizerOptions opts;
  opts.size_buckets = 4096;  // effectively exact for 3 tables
  opts.size_mode = SizePropagationMode::kExactThenRebucket;
  OptimizeResult d =
      OptimizeAlgorithmD(w.query, w.catalog, model, memory, opts);
  OptimizeResult oracle = ExhaustiveBest(
      w.query, w.catalog, opts, [&](const PlanPtr& p) {
        return PlanExpectedCostMultiParam(p, w.query, w.catalog, model,
                                          memory, 4096);
      });
  EXPECT_NEAR(d.objective, oracle.objective,
              1e-6 * std::max(1.0, oracle.objective));
}

INSTANTIATE_TEST_SUITE_P(Seeds, AlgorithmDOracleTest,
                         ::testing::Range<uint64_t>(400, 410));

TEST(AlgorithmDTest, SelectivityUncertaintyCanChangeThePlan) {
  // A nested-loop plan that is optimal at the mean selectivity can be a
  // disaster if the inner relation occasionally turns out larger than
  // memory; Algorithm D should hedge. Construct: B's size distribution
  // straddles the NL memory threshold.
  Catalog catalog;
  catalog.AddTable("A", 2000);
  Table b;
  b.name = "B";
  b.pages = 100;  // mean
  b.pages_dist = Distribution::TwoPoint(40, 0.75, 280, 0.25);
  catalog.AddTable(std::move(b));
  Query q;
  q.AddTable(0);
  q.AddTable(1);
  q.AddPredicate(0, 1, 1e-4);
  CostModel model;
  Distribution memory = Distribution::PointMass(150);
  // Mean-based Algorithm C sees |B| = 110 fitting in memory -> NL cheap.
  OptimizeResult c = OptimizeLecStatic(q, catalog, model, memory);
  EXPECT_EQ(c.plan->method, JoinMethod::kNestedLoop);
  // Algorithm D sees the 25% chance of |B| = 280 >> memory, where NL
  // degenerates to |A| + |A||B| = 2000 + 560000.
  OptimizeResult d = OptimizeAlgorithmD(q, catalog, model, memory);
  EXPECT_NE(d.plan->method, JoinMethod::kNestedLoop);
  // And D's choice truly has lower EC under the full uncertainty.
  double ec_c = PlanExpectedCostMultiParam(c.plan, q, catalog, model, memory,
                                           256);
  double ec_d = PlanExpectedCostMultiParam(d.plan, q, catalog, model, memory,
                                           256);
  EXPECT_LT(ec_d, ec_c);
}

TEST(AlgorithmDTest, SizeBucketBudgetRespected) {
  Rng rng(5);
  WorkloadOptions wopts;
  wopts.num_tables = 6;
  wopts.selectivity_spread = 6.0;
  wopts.table_size_spread = 3.0;
  Workload w = GenerateWorkload(wopts, &rng);
  CostModel model;
  Distribution memory({{50, 0.5}, {1500, 0.5}});
  OptimizerOptions opts;
  opts.size_buckets = 8;
  // Must not blow up combinatorially; objective finite and plan complete.
  OptimizeResult d =
      OptimizeAlgorithmD(w.query, w.catalog, model, memory, opts);
  EXPECT_TRUE(std::isfinite(d.objective));
  EXPECT_EQ(d.plan->tables, w.query.AllTables());
}

TEST(AlgorithmDTest, CoarserBucketsStillNearExact) {
  Rng rng(6);
  WorkloadOptions wopts;
  wopts.num_tables = 4;
  wopts.selectivity_spread = 4.0;
  Workload w = GenerateWorkload(wopts, &rng);
  CostModel model;
  Distribution memory({{40, 0.5}, {900, 0.5}});
  OptimizerOptions exact;
  exact.size_buckets = 2048;
  exact.size_mode = SizePropagationMode::kExactThenRebucket;
  OptimizerOptions coarse;
  coarse.size_buckets = 27;
  OptimizeResult de =
      OptimizeAlgorithmD(w.query, w.catalog, model, memory, exact);
  OptimizeResult dc =
      OptimizeAlgorithmD(w.query, w.catalog, model, memory, coarse);
  // Coarse bucketing should stay within a modest factor of the exact EC.
  EXPECT_LT(std::abs(dc.objective - de.objective),
            0.25 * de.objective + 1e-9);
}

}  // namespace
}  // namespace lec
