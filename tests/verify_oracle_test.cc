// The exhaustive plan-space oracle: the exact DP families must land on its
// optimum (Theorems 2.1/3.3/3.4 by brute force), every strategy's plan
// must score inside the spectrum, and the spectrum itself must be
// well-formed.
#include "verify/oracle.h"

#include <gtest/gtest.h>

#include "cost/expected_cost.h"
#include "optimizer/bushy.h"
#include "optimizer/optimizer.h"
#include "query/generator.h"
#include "rewrite/rewrite.h"
#include "verify/tolerance.h"

namespace lec::verify {
namespace {

struct Corpus {
  std::vector<Workload> workloads;
  Distribution memory = Distribution::PointMass(0);
  MarkovChain chain = MarkovChain::Static({0});
  CostModel model;
};

Corpus MakeCorpus() {
  Corpus c;
  Rng rng(515);
  const struct {
    JoinGraphShape shape;
    int tables;
  } specs[] = {
      {JoinGraphShape::kChain, 5},  {JoinGraphShape::kStar, 4},
      {JoinGraphShape::kCycle, 4},  {JoinGraphShape::kClique, 4},
      {JoinGraphShape::kRandom, 5},
  };
  for (const auto& spec : specs) {
    WorkloadOptions wopts;
    wopts.num_tables = spec.tables;
    wopts.shape = spec.shape;
    wopts.order_by_probability = 0.5;
    wopts.selectivity_spread = 3.0;
    wopts.table_size_spread = 2.0;
    c.workloads.push_back(GenerateWorkload(wopts, &rng));
  }
  c.memory = Distribution({{60, 0.3}, {400, 0.4}, {2500, 0.3}});
  c.chain = MarkovChain::Drift({60, 400, 2500}, 0.5);
  return c;
}

TEST(OracleTest, ExactDpFamiliesHitTheOptimum) {
  Corpus c = MakeCorpus();
  Optimizer optimizer;
  for (const Workload& w : c.workloads) {
    OptimizeRequest req;
    req.query = &w.query;
    req.catalog = &w.catalog;
    req.model = &c.model;
    req.memory = &c.memory;
    req.chain = &c.chain;

    OracleOptions oopt;
    oopt.objective = OracleObjective::kLscAtMean;
    OracleResult lsc_oracle =
        SolveOracle(w.query, w.catalog, c.model, c.memory, oopt);
    OptimizeResult lsc = optimizer.Optimize(StrategyId::kLsc, req);
    EXPECT_TRUE(ApproxEqual(lsc.objective, lsc_oracle.best_objective,
                            kOracleRelTol));

    oopt.objective = OracleObjective::kLecStatic;
    OracleResult lec_oracle =
        SolveOracle(w.query, w.catalog, c.model, c.memory, oopt);
    OptimizeResult lec = optimizer.Optimize(StrategyId::kLecStatic, req);
    EXPECT_TRUE(ApproxEqual(lec.objective, lec_oracle.best_objective,
                            kOracleRelTol));
    // The oracle's chosen plan is as good as the DP's.
    EXPECT_TRUE(ApproxEqual(
        OraclePlanObjective(lec_oracle.best_plan, w.query, w.catalog,
                            c.model, c.memory, oopt),
        lec.objective, kOracleRelTol));

    oopt.objective = OracleObjective::kLecDynamic;
    oopt.chain = &c.chain;
    OracleResult dyn_oracle =
        SolveOracle(w.query, w.catalog, c.model, c.memory, oopt);
    OptimizeResult dyn = optimizer.Optimize(StrategyId::kLecDynamic, req);
    EXPECT_TRUE(ApproxEqual(dyn.objective, dyn_oracle.best_objective,
                            kOracleRelTol));
  }
}

TEST(OracleTest, SpectrumIsWellFormed) {
  Corpus c = MakeCorpus();
  const Workload& w = c.workloads[0];
  OracleOptions oopt;
  OracleResult oracle =
      SolveOracle(w.query, w.catalog, c.model, c.memory, oopt);
  ASSERT_GT(oracle.plans_enumerated, 1u);
  ASSERT_EQ(oracle.spectrum.size(), oracle.plans_enumerated);
  EXPECT_TRUE(std::is_sorted(oracle.spectrum.begin(), oracle.spectrum.end()));
  EXPECT_DOUBLE_EQ(oracle.spectrum.front(), oracle.best_objective);
  EXPECT_DOUBLE_EQ(oracle.spectrum.back(), oracle.worst_objective);
  EXPECT_DOUBLE_EQ(oracle.Regret(oracle.best_objective), 0.0);
  EXPECT_DOUBLE_EQ(oracle.NormalizedRegret(oracle.best_objective), 0.0);
  EXPECT_DOUBLE_EQ(oracle.NormalizedRegret(oracle.worst_objective), 1.0);
  ASSERT_NE(oracle.best_plan, nullptr);
}

TEST(OracleTest, EveryStrategyScoresInsideTheSpectrum) {
  Corpus c = MakeCorpus();
  Optimizer optimizer;
  const Workload& w = c.workloads[0];  // chain: every strategy supports it
  OptimizeRequest req;
  req.query = &w.query;
  req.catalog = &w.catalog;
  req.model = &c.model;
  req.memory = &c.memory;
  req.chain = &c.chain;

  OracleOptions left_deep;
  left_deep.objective = OracleObjective::kLecStatic;
  OracleResult oracle =
      SolveOracle(w.query, w.catalog, c.model, c.memory, left_deep);
  OracleOptions bushy = left_deep;
  bushy.include_bushy = true;
  OracleResult bushy_oracle =
      SolveOracle(w.query, w.catalog, c.model, c.memory, bushy);
  // Bushy space contains left-deep, so its optimum can only be better.
  EXPECT_LE(bushy_oracle.best_objective,
            oracle.best_objective * (1 + kOracleRelTol));
  EXPECT_GT(bushy_oracle.plans_enumerated, oracle.plans_enumerated);

  for (StrategyId id : AllStrategies()) {
    OptimizeResult r = optimizer.Optimize(id, req);
    // Bushy strategies may legitimately beat the left-deep optimum; grade
    // them against the bushy oracle instead.
    bool is_bushy =
        id == StrategyId::kBushyLsc || id == StrategyId::kBushyLec;
    const OracleResult& ref = is_bushy ? bushy_oracle : oracle;
    double ec = OraclePlanObjective(r.plan, w.query, w.catalog, c.model,
                                    c.memory, left_deep);
    EXPECT_TRUE(NoBetterThan(ec, ref.best_objective))
        << StrategyName(id) << ": " << ec << " vs " << ref.best_objective;
    EXPECT_LE(ec, ref.worst_objective * (1 + kOracleRelTol))
        << StrategyName(id);
  }
}

TEST(OracleTest, BushyDpMatchesBushyOracle) {
  Corpus c = MakeCorpus();
  for (const Workload& w : c.workloads) {
    OracleOptions oopt;
    oopt.include_bushy = true;
    oopt.objective = OracleObjective::kLecStatic;
    OracleResult oracle =
        SolveOracle(w.query, w.catalog, c.model, c.memory, oopt);
    OptimizeResult dp =
        OptimizeBushyLec(w.query, w.catalog, c.model, c.memory);
    EXPECT_TRUE(
        ApproxEqual(dp.objective, oracle.best_objective, kOracleRelTol));
  }
}

TEST(OracleTest, DynamicWithIdentityChainEqualsStatic) {
  Corpus c = MakeCorpus();
  const Workload& w = c.workloads[1];
  std::vector<double> states;
  for (const Bucket& b : c.memory.buckets()) states.push_back(b.value);
  MarkovChain identity = MarkovChain::Static(states);
  OracleOptions dyn;
  dyn.objective = OracleObjective::kLecDynamic;
  dyn.chain = &identity;
  OracleOptions stat;
  stat.objective = OracleObjective::kLecStatic;
  OracleResult dyn_oracle =
      SolveOracle(w.query, w.catalog, c.model, c.memory, dyn);
  OracleResult stat_oracle =
      SolveOracle(w.query, w.catalog, c.model, c.memory, stat);
  EXPECT_TRUE(ApproxEqual(dyn_oracle.best_objective,
                          stat_oracle.best_objective, kOracleRelTol));
}

TEST(OracleTest, MultiParamObjectiveMatchesPlanWalk) {
  Corpus c = MakeCorpus();
  const Workload& w = c.workloads[3];  // clique with both spread axes
  OracleOptions oopt;
  oopt.objective = OracleObjective::kMultiParam;
  oopt.size_buckets = 27;
  OracleResult oracle =
      SolveOracle(w.query, w.catalog, c.model, c.memory, oopt);
  EXPECT_DOUBLE_EQ(
      oracle.best_objective,
      PlanExpectedCostMultiParam(oracle.best_plan, w.query, w.catalog,
                                 c.model, c.memory, 27));
}

TEST(OracleTest, RefusesOversizedQueriesAndMissingChain) {
  Rng rng(99);
  WorkloadOptions wopts;
  wopts.num_tables = 9;  // above the default max_tables = 8
  Workload big = GenerateWorkload(wopts, &rng);
  CostModel model;
  Distribution memory = Distribution::PointMass(500);
  OracleOptions oopt;
  EXPECT_THROW(SolveOracle(big.query, big.catalog, model, memory, oopt),
               std::invalid_argument);

  wopts.num_tables = 3;
  Workload small = GenerateWorkload(wopts, &rng);
  oopt.objective = OracleObjective::kLecDynamic;  // no chain supplied
  EXPECT_THROW(SolveOracle(small.query, small.catalog, model, memory, oopt),
               std::invalid_argument);
}

TEST(OracleTest, ManySolvesMatchSingleSolvesOverOnePass) {
  Corpus c = MakeCorpus();
  const Workload& w = c.workloads[2];
  OracleOptions stat;
  stat.objective = OracleObjective::kLecStatic;
  OracleOptions lsc = stat;
  lsc.objective = OracleObjective::kLscAtMean;
  lsc.collect_spectrum = false;
  std::vector<OracleResult> many =
      SolveOracleMany(w.query, w.catalog, c.model, c.memory, {stat, lsc});
  OracleResult stat_single =
      SolveOracle(w.query, w.catalog, c.model, c.memory, stat);
  OracleResult lsc_single =
      SolveOracle(w.query, w.catalog, c.model, c.memory, lsc);
  EXPECT_DOUBLE_EQ(many[0].best_objective, stat_single.best_objective);
  EXPECT_DOUBLE_EQ(many[0].worst_objective, stat_single.worst_objective);
  EXPECT_EQ(many[0].spectrum, stat_single.spectrum);
  EXPECT_DOUBLE_EQ(many[1].best_objective, lsc_single.best_objective);
  // collect_spectrum off: best/worst still exact, spectrum skipped.
  EXPECT_TRUE(many[1].spectrum.empty());
  EXPECT_EQ(many[1].plans_enumerated, many[0].plans_enumerated);
  // Mismatched plan spaces are refused.
  OracleOptions bushy = stat;
  bushy.include_bushy = true;
  EXPECT_THROW(
      SolveOracleMany(w.query, w.catalog, c.model, c.memory, {stat, bushy}),
      std::invalid_argument);
  EXPECT_THROW(SolveOracleMany(w.query, w.catalog, c.model, c.memory, {}),
               std::invalid_argument);
}

// All five shapes with redundant parallel edges, per-table filters and one
// deliberately disconnected instance: the oracle grades the rewrite layer
// by true optimum — no single pass, and not the full pipeline, may ever
// increase it (push-down shrinks inputs, redundant merge conserves the
// combined selectivity, derived sel-1 edges only widen the plan space,
// canonicalization is a relabeling).
TEST(OracleTest, RewritesNeverIncreaseOracleRegret) {
  Corpus c = MakeCorpus();
  Rng rng(717);
  std::vector<Workload> structured;
  const struct {
    JoinGraphShape shape;
    int tables;
    int components;
  } specs[] = {
      {JoinGraphShape::kChain, 5, 1},  {JoinGraphShape::kStar, 4, 1},
      {JoinGraphShape::kCycle, 4, 1},  {JoinGraphShape::kClique, 4, 1},
      {JoinGraphShape::kRandom, 5, 1}, {JoinGraphShape::kChain, 6, 2},
  };
  for (const auto& spec : specs) {
    WorkloadOptions wopts;
    wopts.num_tables = spec.tables;
    wopts.shape = spec.shape;
    wopts.redundant_edge_probability = 0.6;
    wopts.filter_probability = 0.6;
    wopts.num_components = spec.components;
    wopts.order_by_probability = 0.5;
    structured.push_back(GenerateWorkload(wopts, &rng));
  }

  OracleOptions oopt;
  oopt.objective = OracleObjective::kLecStatic;
  oopt.collect_spectrum = false;
  auto leg = [&]() {
    std::vector<rewrite::PassManager> legs;
    rewrite::PassManager m1, m2, m3, m4;
    m1.Add(rewrite::MakeSelectionPushdownPass());
    m2.Add(rewrite::MakeRedundantPredicatePass());
    m3.Add(rewrite::MakeCrossProductAvoidancePass());
    m4.Add(rewrite::MakeCanonicalizationPass());
    legs.push_back(std::move(m1));
    legs.push_back(std::move(m2));
    legs.push_back(std::move(m3));
    legs.push_back(std::move(m4));
    legs.push_back(rewrite::StandardPassManager());
    return legs;
  };
  for (size_t wi = 0; wi < structured.size(); ++wi) {
    const Workload& w = structured[wi];
    OracleResult raw =
        SolveOracle(w.query, w.catalog, c.model, c.memory, oopt);
    for (rewrite::PassManager& mgr : leg()) {
      rewrite::RewriteOutcome out = mgr.Run(w.query, w.catalog);
      OracleResult rw =
          SolveOracle(out.query, out.catalog, c.model, c.memory, oopt);
      // True regret of the rewritten optimum against the raw optimum is
      // never positive: raw is no better than rewritten.
      EXPECT_TRUE(NoBetterThan(raw.best_objective, rw.best_objective))
          << "workload " << wi << ": rewritten " << rw.best_objective
          << " vs raw " << raw.best_objective;
    }
  }
}

TEST(OracleTest, ObjectiveNamesAreStable) {
  EXPECT_STREQ(ToString(OracleObjective::kLscAtMean), "lsc_at_mean");
  EXPECT_STREQ(ToString(OracleObjective::kLecStatic), "lec_static");
  EXPECT_STREQ(ToString(OracleObjective::kLecDynamic), "lec_dynamic");
  EXPECT_STREQ(ToString(OracleObjective::kMultiParam), "multi_param");
}

}  // namespace
}  // namespace lec::verify
