#include "query/generator.h"

#include <gtest/gtest.h>

#include <cmath>

namespace lec {
namespace {

TEST(GeneratorTest, DeterministicGivenSeed) {
  WorkloadOptions opts;
  opts.num_tables = 5;
  Rng a(42), b(42);
  Workload w1 = GenerateWorkload(opts, &a);
  Workload w2 = GenerateWorkload(opts, &b);
  ASSERT_EQ(w1.catalog.size(), w2.catalog.size());
  for (size_t i = 0; i < w1.catalog.size(); ++i) {
    EXPECT_DOUBLE_EQ(w1.catalog.table(static_cast<TableId>(i)).pages,
                     w2.catalog.table(static_cast<TableId>(i)).pages);
  }
}

TEST(GeneratorTest, ChainShape) {
  WorkloadOptions opts;
  opts.num_tables = 5;
  opts.shape = JoinGraphShape::kChain;
  Rng rng(1);
  Workload w = GenerateWorkload(opts, &rng);
  EXPECT_EQ(w.query.num_predicates(), 4);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(w.query.predicate(i).left, i);
    EXPECT_EQ(w.query.predicate(i).right, i + 1);
  }
  EXPECT_TRUE(w.query.IsConnected(w.query.AllTables()));
}

TEST(GeneratorTest, StarShape) {
  WorkloadOptions opts;
  opts.num_tables = 6;
  opts.shape = JoinGraphShape::kStar;
  Rng rng(2);
  Workload w = GenerateWorkload(opts, &rng);
  EXPECT_EQ(w.query.num_predicates(), 5);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(w.query.predicate(i).left, 0);
  }
}

TEST(GeneratorTest, CycleShape) {
  WorkloadOptions opts;
  opts.num_tables = 4;
  opts.shape = JoinGraphShape::kCycle;
  Rng rng(3);
  Workload w = GenerateWorkload(opts, &rng);
  EXPECT_EQ(w.query.num_predicates(), 4);
}

TEST(GeneratorTest, CliqueShape) {
  WorkloadOptions opts;
  opts.num_tables = 5;
  opts.shape = JoinGraphShape::kClique;
  Rng rng(4);
  Workload w = GenerateWorkload(opts, &rng);
  EXPECT_EQ(w.query.num_predicates(), 10);
}

TEST(GeneratorTest, RandomShapeConnectedWithExtraEdges) {
  WorkloadOptions opts;
  opts.num_tables = 7;
  opts.shape = JoinGraphShape::kRandom;
  opts.extra_edges = 3;
  Rng rng(5);
  Workload w = GenerateWorkload(opts, &rng);
  EXPECT_EQ(w.query.num_predicates(), 6 + 3);
  EXPECT_TRUE(w.query.IsConnected(w.query.AllTables()));
}

TEST(GeneratorTest, PagesWithinBounds) {
  WorkloadOptions opts;
  opts.num_tables = 10;
  opts.min_pages = 50;
  opts.max_pages = 5000;
  Rng rng(6);
  Workload w = GenerateWorkload(opts, &rng);
  for (size_t i = 0; i < w.catalog.size(); ++i) {
    double p = w.catalog.table(static_cast<TableId>(i)).pages;
    EXPECT_GE(p, 50 * (1 - 1e-9));
    EXPECT_LE(p, 5000 * (1 + 1e-9));
  }
}

TEST(GeneratorTest, SelectivitySpreadMakesDistributions) {
  WorkloadOptions opts;
  opts.num_tables = 3;
  opts.selectivity_spread = 5.0;
  Rng rng(7);
  Workload w = GenerateWorkload(opts, &rng);
  for (int i = 0; i < w.query.num_predicates(); ++i) {
    EXPECT_EQ(w.query.predicate(i).selectivity.size(), 3u);
  }
}

TEST(GeneratorTest, TableSizeSpreadMakesDistributions) {
  WorkloadOptions opts;
  opts.num_tables = 3;
  opts.table_size_spread = 4.0;
  Rng rng(8);
  Workload w = GenerateWorkload(opts, &rng);
  for (size_t i = 0; i < w.catalog.size(); ++i) {
    EXPECT_TRUE(
        w.catalog.table(static_cast<TableId>(i)).pages_dist.has_value());
  }
}

TEST(GeneratorTest, OrderByProbabilityOne) {
  WorkloadOptions opts;
  opts.num_tables = 4;
  opts.order_by_probability = 1.0;
  Rng rng(9);
  Workload w = GenerateWorkload(opts, &rng);
  EXPECT_TRUE(w.query.required_order().has_value());
}

TEST(GeneratorTest, RejectsTinyQueries) {
  WorkloadOptions opts;
  opts.num_tables = 1;
  Rng rng(10);
  EXPECT_THROW(GenerateWorkload(opts, &rng), std::invalid_argument);
}

TEST(GeneratorValidationTest, RejectsInvertedPageRange) {
  WorkloadOptions opts;
  opts.min_pages = 5000;
  opts.max_pages = 50;
  Rng rng(11);
  EXPECT_THROW(GenerateWorkload(opts, &rng), std::invalid_argument);
  opts.min_pages = 0;  // log-uniform needs a positive lower bound
  opts.max_pages = 50;
  EXPECT_THROW(GenerateWorkload(opts, &rng), std::invalid_argument);
}

TEST(GeneratorValidationTest, RejectsInvertedSelectivityRange) {
  WorkloadOptions opts;
  opts.min_selectivity = 1e-3;
  opts.max_selectivity = 1e-6;
  Rng rng(12);
  EXPECT_THROW(GenerateWorkload(opts, &rng), std::invalid_argument);
  opts.min_selectivity = -1e-6;
  opts.max_selectivity = 1e-3;
  EXPECT_THROW(GenerateWorkload(opts, &rng), std::invalid_argument);
}

TEST(GeneratorValidationTest, RejectsSubUnitOrNanSpreads) {
  Rng rng(13);
  WorkloadOptions opts;
  opts.selectivity_spread = 0.5;  // spreads are multiplicative, >= 1
  EXPECT_THROW(GenerateWorkload(opts, &rng), std::invalid_argument);
  opts.selectivity_spread = 1.0;
  opts.table_size_spread = -2.0;
  EXPECT_THROW(GenerateWorkload(opts, &rng), std::invalid_argument);
  opts.table_size_spread = std::nan("");
  EXPECT_THROW(GenerateWorkload(opts, &rng), std::invalid_argument);
}

TEST(GeneratorValidationTest, RejectsExtraEdgesOnNonRandomShapes) {
  Rng rng(14);
  WorkloadOptions opts;
  opts.extra_edges = 2;
  for (JoinGraphShape shape :
       {JoinGraphShape::kChain, JoinGraphShape::kStar, JoinGraphShape::kCycle,
        JoinGraphShape::kClique}) {
    opts.shape = shape;
    EXPECT_THROW(GenerateWorkload(opts, &rng), std::invalid_argument);
  }
  opts.shape = JoinGraphShape::kRandom;  // the one shape that consumes them
  EXPECT_NO_THROW(GenerateWorkload(opts, &rng));
  opts.extra_edges = -1;
  EXPECT_THROW(GenerateWorkload(opts, &rng), std::invalid_argument);
}

TEST(GeneratorValidationTest, RejectsOutOfRangeOrderByProbability) {
  Rng rng(15);
  WorkloadOptions opts;
  opts.order_by_probability = 1.5;
  EXPECT_THROW(GenerateWorkload(opts, &rng), std::invalid_argument);
  opts.order_by_probability = -0.1;
  EXPECT_THROW(GenerateWorkload(opts, &rng), std::invalid_argument);
}

TEST(GeneratorValidationTest, RejectsOutOfRangeStructureKnobs) {
  Rng rng(16);
  WorkloadOptions opts;
  opts.redundant_edge_probability = 1.5;
  EXPECT_THROW(GenerateWorkload(opts, &rng), std::invalid_argument);
  opts.redundant_edge_probability = -0.1;
  EXPECT_THROW(GenerateWorkload(opts, &rng), std::invalid_argument);
  opts.redundant_edge_probability = 0.0;
  opts.filter_probability = 2.0;
  EXPECT_THROW(GenerateWorkload(opts, &rng), std::invalid_argument);
  opts.filter_probability = 0.0;
  opts.num_components = 0;
  EXPECT_THROW(GenerateWorkload(opts, &rng), std::invalid_argument);
  opts.num_components = opts.num_tables + 1;
  EXPECT_THROW(GenerateWorkload(opts, &rng), std::invalid_argument);
}

TEST(GeneratorTest, RedundantEdgeProbabilityOneDoublesEveryEdge) {
  WorkloadOptions opts;
  opts.num_tables = 5;
  opts.shape = JoinGraphShape::kChain;
  opts.redundant_edge_probability = 1.0;
  Rng rng(17);
  Workload w = GenerateWorkload(opts, &rng);
  EXPECT_EQ(w.query.num_predicates(), 8);  // 4 chain edges, each doubled
  // Duplicates are adjacent to their originals and join the same pair.
  for (int i = 0; i < 8; i += 2) {
    EXPECT_EQ(w.query.predicate(i).left, w.query.predicate(i + 1).left);
    EXPECT_EQ(w.query.predicate(i).right, w.query.predicate(i + 1).right);
  }
}

TEST(GeneratorTest, FilterProbabilityOneFiltersEveryTable) {
  WorkloadOptions opts;
  opts.num_tables = 4;
  opts.filter_probability = 1.0;
  Rng rng(18);
  Workload w = GenerateWorkload(opts, &rng);
  ASSERT_EQ(w.query.num_filters(), 4);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(w.query.filter(i).table, i);
    double sel = w.query.filter(i).selectivity.Mean();
    EXPECT_GE(sel, 0.05);
    EXPECT_LE(sel, 0.9);
  }
}

TEST(GeneratorTest, NumComponentsDisconnectsTheGraph) {
  WorkloadOptions opts;
  opts.num_tables = 6;
  opts.shape = JoinGraphShape::kChain;
  opts.num_components = 2;
  Rng rng(19);
  Workload w = GenerateWorkload(opts, &rng);
  EXPECT_EQ(w.query.num_predicates(), 4);  // boundary edge dropped
  EXPECT_FALSE(w.query.IsConnected(w.query.AllTables()));
  // No predicate crosses the contiguous halves.
  for (int i = 0; i < w.query.num_predicates(); ++i) {
    const JoinPredicate& p = w.query.predicate(i);
    EXPECT_EQ(p.left < 3, p.right < 3);
  }
}

TEST(GeneratorTest, StructureKnobsOffPreserveRngStream) {
  // The knobs must not draw from the rng when disabled: seeded workloads
  // generated before the knobs existed (goldens, regression seeds) must
  // stay byte-identical.
  WorkloadOptions opts;
  opts.num_tables = 5;
  opts.selectivity_spread = 3.0;
  opts.order_by_probability = 0.5;
  Rng a(20260807), b(20260807);
  Workload w1 = GenerateWorkload(opts, &a);
  Workload w2 = GenerateWorkload(opts, &b);
  EXPECT_EQ(a.UniformInt(0, 1 << 30), b.UniformInt(0, 1 << 30));
  EXPECT_EQ(w1.query.num_predicates(), w2.query.num_predicates());
  EXPECT_EQ(w1.query.num_filters(), 0);
}

}  // namespace
}  // namespace lec
