// The strategy registry facade: every registered strategy must return a
// bit-identical plan and objective to its legacy direct entry point across
// a seeded query corpus, and the registry metadata (names, parsing,
// registration) must be consistent.
#include "optimizer/optimizer.h"

#include <gtest/gtest.h>

#include "cost/expected_cost.h"
#include "optimizer/algorithm_a.h"
#include "optimizer/algorithm_b.h"
#include "optimizer/algorithm_c.h"
#include "optimizer/algorithm_d.h"
#include "optimizer/bushy.h"
#include "optimizer/parametric.h"
#include "optimizer/randomized.h"
#include "optimizer/sampling.h"
#include "query/generator.h"

namespace lec {
namespace {

struct Corpus {
  std::vector<Workload> workloads;
  Distribution memory = Distribution::PointMass(0);
  MarkovChain chain = MarkovChain::Static({0});
  CostModel model;
};

Corpus MakeCorpus() {
  Corpus c;
  Rng rng(99);
  const struct {
    JoinGraphShape shape;
    int tables;
    double order_by;
  } specs[] = {
      {JoinGraphShape::kChain, 4, 0.0},  {JoinGraphShape::kChain, 5, 1.0},
      {JoinGraphShape::kStar, 4, 0.5},   {JoinGraphShape::kCycle, 4, 1.0},
      {JoinGraphShape::kClique, 4, 0.0}, {JoinGraphShape::kRandom, 5, 0.5},
  };
  for (const auto& spec : specs) {
    WorkloadOptions wopts;
    wopts.num_tables = spec.tables;
    wopts.shape = spec.shape;
    wopts.order_by_probability = spec.order_by;
    wopts.selectivity_spread = 3.0;
    wopts.table_size_spread = 2.0;
    c.workloads.push_back(GenerateWorkload(wopts, &rng));
  }
  c.memory = Distribution(
      {{100, 0.2}, {400, 0.3}, {1200, 0.3}, {4000, 0.2}});
  c.chain = MarkovChain::Drift({100, 400, 1200, 4000}, 0.6);
  return c;
}

OptimizeRequest BaseRequest(const Corpus& c, const Workload& w) {
  OptimizeRequest req;
  req.query = &w.query;
  req.catalog = &w.catalog;
  req.model = &c.model;
  req.memory = &c.memory;
  req.chain = &c.chain;
  return req;
}

void ExpectSameResult(const OptimizeResult& facade,
                      const OptimizeResult& legacy, const char* label) {
  EXPECT_TRUE(PlanEquals(facade.plan, legacy.plan)) << label;
  EXPECT_EQ(facade.objective, legacy.objective) << label;  // bit-identical
  EXPECT_EQ(facade.candidates_considered, legacy.candidates_considered)
      << label;
  EXPECT_EQ(facade.cost_evaluations, legacy.cost_evaluations) << label;
}

TEST(OptimizerFacadeTest, ParityAcrossCorpus) {
  Corpus c = MakeCorpus();
  Optimizer optimizer;
  for (const Workload& w : c.workloads) {
    OptimizeRequest req = BaseRequest(c, w);

    ExpectSameResult(optimizer.Optimize(StrategyId::kLsc, req),
                     OptimizeLscAtEstimate(w.query, w.catalog, c.model,
                                           c.memory, PointEstimate::kMean),
                     "lsc");
    {
      OptimizeRequest mode_req = req;
      mode_req.lsc_estimate = PointEstimate::kMode;
      ExpectSameResult(optimizer.Optimize(StrategyId::kLsc, mode_req),
                       OptimizeLscAtEstimate(w.query, w.catalog, c.model,
                                             c.memory, PointEstimate::kMode),
                       "lsc@mode");
    }
    ExpectSameResult(
        optimizer.Optimize(StrategyId::kAlgorithmA, req),
        OptimizeAlgorithmA(w.query, w.catalog, c.model, c.memory), "a");
    ExpectSameResult(
        optimizer.Optimize(StrategyId::kAlgorithmB, req),
        OptimizeAlgorithmB(w.query, w.catalog, c.model, c.memory, 3), "b");
    ExpectSameResult(
        optimizer.Optimize(StrategyId::kLecStatic, req),
        OptimizeLecStatic(w.query, w.catalog, c.model, c.memory), "c");
    ExpectSameResult(optimizer.Optimize(StrategyId::kLecDynamic, req),
                     OptimizeLecDynamic(w.query, w.catalog, c.model, c.chain,
                                        c.memory),
                     "c-dynamic");
    ExpectSameResult(
        optimizer.Optimize(StrategyId::kAlgorithmD, req),
        OptimizeAlgorithmD(w.query, w.catalog, c.model, c.memory), "d");
    ExpectSameResult(optimizer.Optimize(StrategyId::kBushyLsc, req),
                     OptimizeBushyLsc(w.query, w.catalog, c.model,
                                      c.memory.Mean()),
                     "bushy-lsc");
    ExpectSameResult(
        optimizer.Optimize(StrategyId::kBushyLec, req),
        OptimizeBushyLec(w.query, w.catalog, c.model, c.memory),
        "bushy-lec");

    {
      OptimizeResult facade = optimizer.Optimize(StrategyId::kRandomized,
                                                 req);
      Rng rng(req.seed);
      RandomizedOptions ropts;
      OptimizeResult legacy = OptimizeRandomizedLec(w.query, w.catalog,
                                                    c.model, c.memory, &rng,
                                                    ropts);
      ExpectSameResult(facade, legacy, "randomized");
    }
    {
      OptimizeResult facade = optimizer.Optimize(StrategyId::kParametric,
                                                 req);
      ParametricPlanSet set = ParametricPlanSet::Compile(
          w.query, w.catalog, c.model, c.memory);
      EXPECT_TRUE(PlanEquals(facade.plan, set.PlanFor(c.memory.Mean())));
      EXPECT_EQ(facade.objective,
                ParametricStartupExpectedCost(set, w.query, w.catalog,
                                              c.model, c.memory));
    }
    {
      OptimizeResult facade = optimizer.Optimize(StrategyId::kSampling, req);
      SamplingDecision decision = EvaluateSampling(
          w.query, w.catalog, c.model, c.memory, req.sample_predicate);
      EXPECT_EQ(facade.objective, decision.Evpi());
      EXPECT_TRUE(PlanEquals(
          facade.plan,
          OptimizeAlgorithmD(w.query, w.catalog, c.model, c.memory).plan));
    }
  }
}

TEST(OptimizerFacadeTest, EveryStrategyIsRegistered) {
  Optimizer optimizer;
  for (StrategyId id : AllStrategies()) {
    EXPECT_TRUE(optimizer.IsRegistered(id)) << StrategyName(id);
  }
  EXPECT_EQ(optimizer.RegisteredStrategies().size(), AllStrategies().size());
}

TEST(OptimizerFacadeTest, NamesRoundTrip) {
  for (StrategyId id : AllStrategies()) {
    std::string_view name = StrategyName(id);
    EXPECT_FALSE(name.empty());
    auto parsed = ParseStrategy(name);
    ASSERT_TRUE(parsed.has_value()) << name;
    EXPECT_EQ(*parsed, id);
  }
  EXPECT_FALSE(ParseStrategy("no_such_strategy").has_value());
}

TEST(OptimizerFacadeTest, StampsElapsedWallTime) {
  Corpus c = MakeCorpus();
  Optimizer optimizer;
  OptimizeRequest req = BaseRequest(c, c.workloads[0]);
  OptimizeResult r = optimizer.Optimize(StrategyId::kLecStatic, req);
  // GE, not GT: a coarse steady_clock may measure 0 on a small query.
  EXPECT_GE(r.elapsed_seconds, 0.0);
  // Legacy entry points stamp it too (one source of truth for bench).
  OptimizeResult legacy = OptimizeLecStatic(c.workloads[0].query,
                                            c.workloads[0].catalog, c.model,
                                            c.memory);
  EXPECT_GE(legacy.elapsed_seconds, 0.0);
}

TEST(OptimizerFacadeTest, FillsPerPhaseCounters) {
  Corpus c = MakeCorpus();
  Optimizer optimizer;
  const Workload& w = c.workloads[1];  // chain, 5 tables
  OptimizeRequest req = BaseRequest(c, w);
  OptimizeResult r = optimizer.Optimize(StrategyId::kLecStatic, req);
  ASSERT_EQ(r.candidates_by_phase.size(),
            static_cast<size_t>(w.query.num_tables() - 1));
  size_t total = 0;
  for (size_t n : r.candidates_by_phase) total += n;
  EXPECT_EQ(total, r.candidates_considered);
}

TEST(OptimizerFacadeTest, ValidatesRequests) {
  Corpus c = MakeCorpus();
  Optimizer optimizer;
  OptimizeRequest empty;
  EXPECT_THROW(optimizer.Optimize(StrategyId::kLsc, empty),
               std::invalid_argument);
  OptimizeRequest no_chain = BaseRequest(c, c.workloads[0]);
  no_chain.chain = nullptr;
  EXPECT_THROW(optimizer.Optimize(StrategyId::kLecDynamic, no_chain),
               std::invalid_argument);
}

TEST(OptimizerFacadeTest, RegisterOverridesStrategy) {
  Corpus c = MakeCorpus();
  Optimizer optimizer;
  optimizer.Register(StrategyId::kLsc, [](const OptimizeRequest&) {
    OptimizeResult r;
    r.objective = -1;
    return r;
  });
  OptimizeRequest req = BaseRequest(c, c.workloads[0]);
  EXPECT_EQ(optimizer.Optimize(StrategyId::kLsc, req).objective, -1);
}

}  // namespace
}  // namespace lec
