#include "exec/plan_executor.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "cost/cost_model.h"
#include "cost/cost_policies.h"
#include "optimizer/reoptimize.h"
#include "storage/join_operators.h"

namespace lec {
namespace {

/// Sorted payload vector — the exact multiset identity every executed plan
/// must satisfy against the naive reference.
std::vector<int64_t> PayloadMultiset(const TableData& t) {
  std::vector<int64_t> out;
  out.reserve(t.num_tuples());
  t.ForEachTuple([&](const Tuple& tup) { out.push_back(tup.payload); });
  std::sort(out.begin(), out.end());
  return out;
}

/// Composes NaiveJoinReference in the given left-deep join order, using the
/// same chain column routing the executor applies. This is the test's own
/// copy of the routing contract — a divergence in either side fails the
/// multiset comparison.
TableData NaiveCompose(const EngineWorkload& w,
                       const std::vector<QueryPos>& order) {
  TableData cur = w.tables.at(static_cast<size_t>(order.at(0)));
  int lo = order[0], hi = order[0];
  for (size_t i = 1; i < order.size(); ++i) {
    int j = order[i];
    JoinColumnSpec spec;
    if (j == hi + 1) {
      spec.left_col = 1;
      spec.right_col = 0;
      spec.out0_side = 0;
      spec.out0_col = 0;
      spec.out1_side = 1;
      spec.out1_col = 1;
      hi = j;
    } else {
      EXPECT_EQ(j, lo - 1) << "test order must walk adjacent chain positions";
      spec.left_col = 0;
      spec.right_col = 1;
      spec.out0_side = 1;
      spec.out0_col = 0;
      spec.out1_side = 0;
      spec.out1_col = 1;
      lo = j;
    }
    cur = NaiveJoinReference(cur, w.tables.at(static_cast<size_t>(j)), spec);
  }
  return cur;
}

struct ChainFixture {
  Catalog catalog;
  Query query;
  EngineWorkload data;

  explicit ChainFixture(std::vector<double> pages, double sel = 0.02,
                        uint64_t seed = 11) {
    for (size_t i = 0; i < pages.size(); ++i) {
      catalog.AddTable("t" + std::to_string(i), pages[i]);
      query.AddTable(static_cast<TableId>(i));
    }
    for (size_t i = 0; i + 1 < pages.size(); ++i) {
      query.AddPredicate(static_cast<QueryPos>(i),
                         static_cast<QueryPos>(i + 1), sel);
    }
    Rng rng(seed);
    data = BuildChainEngineWorkload(query, catalog, &rng);
  }
};

/// Hand-built left-deep plan over `order` with one method everywhere.
PlanPtr ChainPlan(const std::vector<QueryPos>& order, JoinMethod method,
                  double est_pages = 4.0) {
  PlanPtr plan = MakeAccess(order.at(0), 1);
  int lo = order[0], hi = order[0];
  for (size_t i = 1; i < order.size(); ++i) {
    int j = order[i];
    int pred = j == hi + 1 ? hi : j;  // predicate between j and the interval
    lo = std::min(lo, j);
    hi = std::max(hi, j);
    plan = MakeJoin(plan, MakeAccess(j, 1), method, {pred}, kUnsorted,
                    est_pages);
  }
  return plan;
}

// --- Correctness across methods and spill regimes -------------------------

TEST(PlanExecutorTest, MultisetMatchesNaiveReferenceAllMethodsAllRegimes) {
  // Pages chosen so the memory grid straddles every operator threshold:
  // NL in-memory needs M >= min+2 = 10; SM/GH flip passes around
  // sqrt(20) ~ 4.5 and cbrt(20) ~ 2.7.
  ChainFixture f({20, 12, 16, 8});
  std::vector<QueryPos> order = {0, 1, 2, 3};
  std::vector<int64_t> want = PayloadMultiset(NaiveCompose(f.data,
                                                                  order));
  ASSERT_FALSE(want.empty());
  for (JoinMethod m : kAllJoinMethods) {
    for (double memory : {3.0, 5.0, 8.0, 40.0}) {
      PlanPtr plan = ChainPlan(order, m);
      ExecutePlanOptions opts;
      opts.memory_by_phase = {memory};
      ExecutionResult r = ExecutePlan(plan, f.query, f.data, opts);
      EXPECT_EQ(PayloadMultiset(r.result), want)
          << ToString(m) << " at M=" << memory;
      EXPECT_GT(r.total_io(), 0u);
      EXPECT_EQ(r.phases.size(), 3u);
    }
  }
}

TEST(PlanExecutorTest, BackwardAndMixedOrdersMatchForwardResult) {
  ChainFixture f({14, 10, 12, 8}, 0.03, 7);
  std::vector<int64_t> want =
      PayloadMultiset(NaiveCompose(f.data, {0, 1, 2, 3}));
  for (std::vector<QueryPos> order :
       {std::vector<QueryPos>{3, 2, 1, 0}, std::vector<QueryPos>{1, 2, 0, 3},
        std::vector<QueryPos>{2, 1, 3, 0}}) {
    std::vector<int64_t> naive =
        PayloadMultiset(NaiveCompose(f.data, order));
    EXPECT_EQ(naive, want) << "naive reference must be order-invariant";
    PlanPtr plan = ChainPlan(order, JoinMethod::kGraceHash);
    ExecutePlanOptions opts;
    opts.memory_by_phase = {6.0};
    ExecutionResult r = ExecutePlan(plan, f.query, f.data, opts);
    EXPECT_EQ(PayloadMultiset(r.result), want);
  }
}

TEST(PlanExecutorTest, PerPhaseMemoryAndTracesAreRecorded) {
  ChainFixture f({16, 12, 8});
  PlanPtr plan = ChainPlan({0, 1, 2}, JoinMethod::kSortMerge);
  ExecutePlanOptions opts;
  opts.memory_by_phase = {24.0, 3.0};
  ExecutionResult r = ExecutePlan(plan, f.query, f.data, opts);
  ASSERT_EQ(r.phases.size(), 2u);
  EXPECT_EQ(r.phases[0].memory, 24.0);
  EXPECT_EQ(r.phases[1].memory, 3.0);
  EXPECT_EQ(r.phases[0].phase, 0);
  EXPECT_EQ(r.phases[1].phase, 1);
  EXPECT_EQ(r.phases[0].method, JoinMethod::kSortMerge);
  uint64_t traced = 0;
  for (const PhaseTrace& t : r.phases) traced += t.page_reads + t.page_writes;
  EXPECT_EQ(traced, r.total_io());
  EXPECT_EQ(r.phases[0].left_pages, 16.0);
  EXPECT_EQ(r.phases[0].right_pages, 12.0);
}

TEST(PlanExecutorTest, FinalSortIsExecutedAndTraced) {
  ChainFixture f({16, 12});
  PlanPtr join = ChainPlan({0, 1}, JoinMethod::kGraceHash);
  PlanPtr sorted = MakeSort(join, 0);
  ExecutePlanOptions opts;
  opts.memory_by_phase = {6.0};
  ExecutionResult plain = ExecutePlan(join, f.query, f.data, opts);
  ExecutionResult with = ExecutePlan(sorted, f.query, f.data, opts);
  EXPECT_EQ(PayloadMultiset(with.result), PayloadMultiset(plain.result));
  EXPECT_GT(with.total_io(), plain.total_io());
  ASSERT_EQ(with.phases.size(), 2u);
  EXPECT_TRUE(with.phases.back().is_sort);
  // Output really is sorted on column 0.
  int64_t prev = INT64_MIN;
  bool ordered = true;
  with.result.ForEachTuple([&](const Tuple& t) {
    if (t.cols[0] < prev) ordered = false;
    prev = t.cols[0];
  });
  EXPECT_TRUE(ordered);
}

// --- Drift detection and mid-flight re-optimization -----------------------

TEST(PlanExecutorTest, DriftFlagFiresOnStaleEstimates) {
  ChainFixture f({16, 12, 8});
  // est_pages deliberately tiny: every realized intermediate "drifts".
  PlanPtr plan = ChainPlan({0, 1, 2}, JoinMethod::kGraceHash,
                           /*est_pages=*/0.01);
  ExecutePlanOptions opts;
  opts.memory_by_phase = {8.0};
  opts.drift_threshold = 0.5;
  ExecutionResult r = ExecutePlan(plan, f.query, f.data, opts);
  ASSERT_EQ(r.phases.size(), 2u);
  EXPECT_TRUE(r.phases[0].drifted);
  EXPECT_EQ(r.reoptimizations, 0);  // detection only, reoptimize off
}

TEST(PlanExecutorTest, ReoptimizationPreservesResultMultiset) {
  ChainFixture f({18, 10, 14, 8}, 0.03, 13);
  std::vector<int64_t> want =
      PayloadMultiset(NaiveCompose(f.data, {0, 1, 2, 3}));
  CostModel model;
  for (JoinMethod m : kAllJoinMethods) {
    PlanPtr plan = ChainPlan({0, 1, 2, 3}, m, /*est_pages=*/0.01);
    ExecutePlanOptions opts;
    opts.memory_by_phase = {12.0, 6.0, 20.0};
    opts.drift_threshold = 0.0;  // every phase "drifts": force re-planning
    opts.reoptimize_on_drift = true;
    opts.model = &model;
    ExecutionResult r = ExecutePlan(plan, f.query, f.data, opts);
    EXPECT_GT(r.reoptimizations, 0) << ToString(m);
    EXPECT_EQ(PayloadMultiset(r.result), want) << ToString(m);
    // Re-planning never changes the total number of executed joins.
    int joins = 0;
    for (const PhaseTrace& t : r.phases) joins += t.is_sort ? 0 : 1;
    EXPECT_EQ(joins, 3);
  }
}

TEST(PlanExecutorTest, ReoptimizationBudgetIsRespected) {
  ChainFixture f({18, 10, 14, 8}, 0.03, 13);
  CostModel model;
  PlanPtr plan = ChainPlan({0, 1, 2, 3}, JoinMethod::kGraceHash,
                           /*est_pages=*/0.01);
  ExecutePlanOptions opts;
  opts.memory_by_phase = {8.0};
  opts.drift_threshold = 0.0;
  opts.reoptimize_on_drift = true;
  opts.model = &model;
  opts.max_reoptimizations = 1;
  ExecutionResult r = ExecutePlan(plan, f.query, f.data, opts);
  EXPECT_EQ(r.reoptimizations, 1);
}

TEST(PlanExecutorTest, ReoptimizeRequiresModel) {
  ChainFixture f({8, 8});
  PlanPtr plan = ChainPlan({0, 1}, JoinMethod::kGraceHash);
  ExecutePlanOptions opts;
  opts.memory_by_phase = {8.0};
  opts.reoptimize_on_drift = true;
  EXPECT_THROW(ExecutePlan(plan, f.query, f.data, opts),
               std::invalid_argument);
}

TEST(PlanExecutorTest, ReoptimizationWithMarkovChainPreservesResult) {
  ChainFixture f({18, 10, 14, 8}, 0.03, 29);
  std::vector<int64_t> want =
      PayloadMultiset(NaiveCompose(f.data, {0, 1, 2, 3}));
  CostModel model;
  MarkovChain chain = MarkovChain::Drift({4.0, 8.0, 16.0}, 0.6);
  Rng rng(5);
  std::vector<double> trajectory =
      chain.SampleTrajectory(Distribution::PointMass(8.0), 3, &rng);
  PlanPtr plan = ChainPlan({0, 1, 2, 3}, JoinMethod::kSortMerge,
                           /*est_pages=*/0.01);
  ExecutePlanOptions opts;
  opts.memory_by_phase = trajectory;
  opts.drift_threshold = 0.0;
  opts.reoptimize_on_drift = true;
  opts.model = &model;
  opts.chain = &chain;  // marginals conditioned on the realized state
  ExecutionResult r = ExecutePlan(plan, f.query, f.data, opts);
  EXPECT_GT(r.reoptimizations, 0);
  EXPECT_EQ(PayloadMultiset(r.result), want);
}

// --- Measured cost model ---------------------------------------------------

TEST(MeasuredCostModelTest, UnfitModelIsBitIdenticalToAnalytic) {
  CostModel analytic;
  MeasuredCostModel measured(analytic);
  for (JoinMethod m : kAllJoinMethods) {
    for (double mem : {3.0, 6.0, 12.0, 50.0}) {
      EXPECT_EQ(measured.JoinCost(m, 100, 40, mem),
                analytic.JoinCost(m, 100, 40, mem));
    }
  }
  EXPECT_EQ(measured.SortCost(80, 7), analytic.SortCost(80, 7));
}

TEST(MeasuredCostModelTest, FitRecoversExactLinearRelationship) {
  // Corpus manufactured as measured = 1.5 * analytic + 0.5 * (a+b) + 3:
  // the least-squares fit must recover the coefficients and predict with
  // ~zero error.
  CostModel analytic;
  std::vector<OperatorSample> corpus;
  for (double a : {10.0, 20.0, 40.0, 80.0}) {
    for (double b : {5.0, 15.0, 30.0}) {
      for (double mem : {3.0, 5.0, 9.0, 20.0}) {
        OperatorSample s;
        s.method = JoinMethod::kSortMerge;
        s.left_pages = a;
        s.right_pages = b;
        s.memory = mem;
        s.measured_io =
            1.5 * analytic.JoinCost(JoinMethod::kSortMerge, a, b, mem) +
            0.5 * (a + b) + 3.0;
        corpus.push_back(s);
      }
    }
  }
  MeasuredCostModel model(analytic);
  model.Fit(corpus);
  const MeasuredCoefficients& c =
      model.join_coefficients(JoinMethod::kSortMerge);
  EXPECT_NEAR(c.alpha, 1.5, 1e-3);
  EXPECT_NEAR(c.beta, 0.5, 1e-2);
  EXPECT_NEAR(c.gamma, 3.0, 0.5);
  EXPECT_LT(model.MeanAbsRelativeError(corpus), 1e-3);
  EXPECT_EQ(c.samples, corpus.size());
  // Unfit operators keep the analytic fallback.
  EXPECT_EQ(model.join_coefficients(JoinMethod::kNestedLoop).samples, 0u);
  EXPECT_EQ(model.JoinCost(JoinMethod::kNestedLoop, 10, 5, 20),
            analytic.JoinCost(JoinMethod::kNestedLoop, 10, 5, 20));
}

TEST(MeasuredCostModelTest, CalibrationOnRealOperatorsBeatsRawAnalytic) {
  CalibrationGrid grid;
  Rng rng(17);
  std::vector<OperatorSample> corpus = BuildCalibrationCorpus(grid, &rng);
  ASSERT_GT(corpus.size(), 50u);
  CostModel analytic;
  MeasuredCostModel unfit(analytic);
  MeasuredCostModel fitted(analytic);
  fitted.Fit(corpus);
  double err_unfit = unfit.MeanAbsRelativeError(corpus);
  double err_fitted = fitted.MeanAbsRelativeError(corpus);
  EXPECT_LE(err_fitted, err_unfit + 1e-9);
  EXPECT_LT(err_fitted, 0.35);
}

TEST(MeasuredCostModelTest, MeasuredBackendPlansThroughTheSameDp) {
  Catalog catalog;
  catalog.AddTable("A", 200);
  catalog.AddTable("B", 40);
  catalog.AddTable("C", 120);
  Query q;
  q.AddTable(0);
  q.AddTable(1);
  q.AddTable(2);
  q.AddPredicate(0, 1, 1e-3);
  q.AddPredicate(1, 2, 1e-3);
  CostModel analytic;
  // Unfit model: the measured backend must reproduce the LSC DP exactly
  // (identity coefficients make every candidate cost bit-identical).
  MeasuredCostModel unfit(analytic);
  OptimizeResult via_measured = OptimizeWithMeasuredModel(q, catalog, unfit,
                                                          12.0);
  DpContext ctx(q, catalog, OptimizerOptions{});
  OptimizeResult via_analytic = RunDp(ctx, LscCostProvider{analytic, 12.0});
  EXPECT_EQ(via_measured.objective, via_analytic.objective);
  EXPECT_TRUE(PlanEquals(via_measured.plan, via_analytic.plan));
  // A fitted model still yields a valid plan for the same query.
  Rng rng(23);
  CalibrationGrid grid;
  MeasuredCostModel fitted(analytic);
  fitted.Fit(BuildCalibrationCorpus(grid, &rng));
  OptimizeResult refit = OptimizeWithMeasuredModel(q, catalog, fitted, 12.0);
  ASSERT_NE(refit.plan, nullptr);
  EXPECT_EQ(CountJoins(refit.plan), 2);
  EXPECT_GT(refit.objective, 0.0);
}

}  // namespace
}  // namespace lec
