#include <algorithm>

#include <gtest/gtest.h>

#include "storage/buffer_pool.h"
#include "storage/external_sort.h"
#include "storage/page.h"
#include "storage/table_data.h"
#include "cost/cost_model.h"
#include "util/hash.h"
#include "util/rng.h"

namespace lec {
namespace {

TEST(PageTest, CapacityEnforced) {
  Page p;
  for (size_t i = 0; i < kTuplesPerPage; ++i) {
    EXPECT_TRUE(p.Append({{static_cast<int64_t>(i), 0}, 0}));
  }
  EXPECT_TRUE(p.Full());
  EXPECT_FALSE(p.Append({{0, 0}, 0}));
  EXPECT_EQ(p.size(), kTuplesPerPage);
}

TEST(TableDataTest, AppendOpensNewPages) {
  TableData t;
  for (size_t i = 0; i < kTuplesPerPage * 2 + 5; ++i) {
    t.Append({{static_cast<int64_t>(i), 0}, static_cast<int64_t>(i)});
  }
  EXPECT_EQ(t.num_pages(), 3u);
  EXPECT_EQ(t.num_tuples(), kTuplesPerPage * 2 + 5);
  EXPECT_EQ(t.AllTuples().size(), t.num_tuples());
}

TEST(TableDataTest, GenerateTableShape) {
  Rng rng(1);
  TableData t = GenerateTable(10, 100, 0, &rng);
  EXPECT_EQ(t.num_pages(), 10u);
  EXPECT_EQ(t.num_tuples(), 10 * kTuplesPerPage);
  int64_t row = 0;
  for (const Tuple& tup : t.AllTuples()) {
    EXPECT_GE(tup.cols[0], 0);
    EXPECT_LT(tup.cols[0], 100);
    EXPECT_EQ(tup.cols[1], row);  // key_range 0 -> row id
    // Payloads are the row id pushed through the SplitMix64 bijection so
    // CombineTuples' additive lineage fingerprint works in a hashed domain.
    EXPECT_EQ(tup.payload,
              static_cast<int64_t>(SplitMix64(static_cast<uint64_t>(row))));
    ++row;
  }
}

TEST(TableDataTest, KeyRangeForSelectivity) {
  // K = tuples_per_page / selectivity.
  EXPECT_EQ(KeyRangeForSelectivity(0.01),
            static_cast<int64_t>(kTuplesPerPage) * 100);
  EXPECT_THROW(KeyRangeForSelectivity(0), std::invalid_argument);
  EXPECT_THROW(KeyRangeForSelectivity(1.5), std::invalid_argument);
}

TEST(BufferPoolTest, CountersAccumulate) {
  BufferPool pool(10);
  pool.ChargeRead(3);
  pool.ChargeWrite();
  EXPECT_EQ(pool.reads(), 3u);
  EXPECT_EQ(pool.writes(), 1u);
  EXPECT_EQ(pool.total_io(), 4u);
  pool.ResetCounters();
  EXPECT_EQ(pool.total_io(), 0u);
}

TEST(BufferPoolTest, ReservationEnforcesCapacity) {
  BufferPool pool(10);
  {
    BufferPool::Reservation r1 = pool.Reserve(6);
    EXPECT_EQ(pool.reserved(), 6u);
    EXPECT_THROW(pool.Reserve(5), OutOfMemoryError);
    BufferPool::Reservation r2 = pool.Reserve(4);
    EXPECT_EQ(pool.reserved(), 10u);
  }
  // RAII released everything.
  EXPECT_EQ(pool.reserved(), 0u);
  EXPECT_NO_THROW(pool.Reserve(10));
  EXPECT_THROW(BufferPool(0), std::invalid_argument);
}

TEST(BufferPoolTest, ReservationMoveTransfersOwnership) {
  BufferPool pool(10);
  {
    BufferPool::Reservation r1 = pool.Reserve(6);
    BufferPool::Reservation r2 = std::move(r1);
    EXPECT_EQ(pool.reserved(), 6u);
  }
  EXPECT_EQ(pool.reserved(), 0u);
}

TEST(ExternalSortTest, SortsCorrectly) {
  Rng rng(2);
  TableData t = GenerateTable(20, 500, 0, &rng);
  BufferPool pool(5);
  TableData sorted = ExternalSortOp(&pool, t, 0);
  EXPECT_EQ(sorted.num_tuples(), t.num_tuples());
  std::vector<Tuple> tuples = sorted.AllTuples();
  for (size_t i = 1; i < tuples.size(); ++i) {
    EXPECT_LE(tuples[i - 1].cols[0], tuples[i].cols[0]);
  }
  // Multiset of keys preserved.
  std::vector<int64_t> orig, after;
  for (const Tuple& x : t.AllTuples()) orig.push_back(x.payload);
  for (const Tuple& x : tuples) after.push_back(x.payload);
  std::sort(orig.begin(), orig.end());
  std::sort(after.begin(), after.end());
  EXPECT_EQ(orig, after);
}

TEST(ExternalSortTest, InMemoryChargesOneRead) {
  Rng rng(3);
  TableData t = GenerateTable(8, 100, 0, &rng);
  BufferPool pool(8);
  ExternalSortOp(&pool, t, 0);
  EXPECT_EQ(pool.reads(), 8u);
  EXPECT_EQ(pool.writes(), 0u);
}

TEST(ExternalSortTest, MeasuredIoMatchesAnalyticSortCost) {
  // The engine's headline fidelity property: for inputs larger than memory
  // the measured I/O equals CostModel::SortCost exactly.
  CostModel model;
  Rng rng(4);
  struct Case {
    size_t pages;
    size_t memory;
  };
  for (Case c : {Case{30, 5}, Case{100, 10}, Case{100, 4}, Case{250, 16},
                 Case{64, 3}}) {
    TableData t = GenerateTable(c.pages, 1000, 0, &rng);
    BufferPool pool(c.memory);
    ExternalSortOp(&pool, t, 0);
    EXPECT_DOUBLE_EQ(static_cast<double>(pool.total_io()),
                     model.SortCost(static_cast<double>(c.pages),
                                    static_cast<double>(c.memory)))
        << "pages=" << c.pages << " memory=" << c.memory;
  }
}

TEST(ExternalSortTest, SortByEitherColumn) {
  Rng rng(5);
  TableData t = GenerateTable(12, 50, 90, &rng);
  BufferPool pool(4);
  TableData sorted = ExternalSortOp(&pool, t, 1);
  std::vector<Tuple> tuples = sorted.AllTuples();
  for (size_t i = 1; i < tuples.size(); ++i) {
    EXPECT_LE(tuples[i - 1].cols[1], tuples[i].cols[1]);
  }
}

TEST(ExternalSortTest, RunFormationRespectsMemory) {
  Rng rng(6);
  TableData t = GenerateTable(20, 100, 0, &rng);
  BufferPool pool(4);
  std::vector<std::vector<Tuple>> runs = FormSortedRuns(&pool, t, 0);
  EXPECT_EQ(runs.size(), 5u);  // ceil(20 / 4)
  for (const auto& run : runs) {
    EXPECT_LE(PagesForTuples(run.size()), 4u);
    for (size_t i = 1; i < run.size(); ++i) {
      EXPECT_LE(run[i - 1].cols[0], run[i].cols[0]);
    }
  }
  EXPECT_EQ(pool.reads(), 20u);
  EXPECT_EQ(pool.writes(), 20u);
}

TEST(ExternalSortTest, EmptyInput) {
  TableData empty;
  BufferPool pool(4);
  TableData sorted = ExternalSortOp(&pool, empty, 0);
  EXPECT_EQ(sorted.num_tuples(), 0u);
}

}  // namespace
}  // namespace lec
