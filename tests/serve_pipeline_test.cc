// The ServePipeline contract (service/serve_pipeline.h): coalesced
// waiters receive the bit-identical result of ONE optimization, a full
// queue rejects immediately, deadline degradation is deterministic under
// an injected clock, shutdown drains every admitted job, and any worker
// count serves bit-identically to a sequential facade run. Also the PR-5
// miss-then-insert race regression: N concurrent identical cold requests
// cost exactly one strategy invocation.
#include "service/serve_pipeline.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <condition_variable>
#include <cstring>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "query/generator.h"
#include "service/plan_cache.h"
#include "util/rng.h"

namespace lec {
namespace {

uint64_t Bits(double v) {
  uint64_t b;
  std::memcpy(&b, &v, sizeof(b));
  return b;
}

serde::ServeRequest MakeRequest(uint64_t seed,
                                const std::string& strategy = "lec_static",
                                int num_tables = 5) {
  Rng rng(seed);
  WorkloadOptions wopts;
  wopts.num_tables = num_tables;
  wopts.shape = JoinGraphShape::kChain;
  wopts.selectivity_spread = 3.0;
  wopts.table_size_spread = 2.0;
  serde::ServeRequest request;
  request.strategy = strategy;
  request.workload = GenerateWorkload(wopts, &rng);
  request.memory = Distribution({{64, 0.25}, {512, 0.5}, {4096, 0.25}});
  request.seed = seed;
  return request;
}

/// The sequential ground truth: the same request through a plain facade,
/// with the same field mapping the pipeline applies and no caches.
OptimizeResult Reference(const serde::ServeRequest& r, StrategyId id,
                         const CostModel& model, const Optimizer& opt) {
  OptimizeRequest req;
  req.query = &r.workload.query;
  req.catalog = &r.workload.catalog;
  req.model = &model;
  req.memory = &r.memory;
  req.options = r.options;
  req.options.plan_cache = nullptr;
  req.options.ec_cache = nullptr;
  req.options.dist_arena = nullptr;
  req.lsc_estimate = r.lsc_estimate;
  req.top_c = r.top_c;
  if (r.chain) req.chain = &*r.chain;
  req.seed = r.seed;
  req.randomized_restarts = r.randomized_restarts;
  req.randomized_patience = r.randomized_patience;
  req.sample_predicate = r.sample_predicate;
  return opt.Optimize(id, req);
}

void ExpectBitEqual(const OptimizeResult& a, const OptimizeResult& b) {
  EXPECT_EQ(Bits(a.objective), Bits(b.objective));
  EXPECT_EQ(a.candidates_considered, b.candidates_considered);
  EXPECT_EQ(a.cost_evaluations, b.cost_evaluations);
  EXPECT_EQ(a.candidates_by_phase, b.candidates_by_phase);
  EXPECT_EQ(a.pruned_expansions, b.pruned_expansions);
  EXPECT_TRUE(PlanEquals(a.plan, b.plan));
}

/// A gate the test opens to let gated strategy invocations proceed, plus
/// an entered-counter so the test can wait for a worker to actually be
/// mid-compute (not just queued).
struct Gate {
  std::mutex mu;
  std::condition_variable cv;
  bool open = false;
  int entered = 0;

  void Enter() {
    std::unique_lock<std::mutex> lock(mu);
    ++entered;
    cv.notify_all();
    cv.wait(lock, [&] { return open; });
  }
  void WaitEntered(int n) {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return entered >= n; });
  }
  void Open() {
    {
      std::lock_guard<std::mutex> lock(mu);
      open = true;
    }
    cv.notify_all();
  }
};

/// Facade whose kLecStatic first parks at `gate`, then counts, then
/// delegates to `inner` (cache stripped so only the PIPELINE-visible
/// facade touches the shared PlanCache — one lookup/insert per compute).
class GatedOptimizer {
 public:
  GatedOptimizer(Gate* gate, std::atomic<int>* count) {
    facade_.Register(
        StrategyId::kLecStatic, [this, gate, count](OptimizeRequest req) {
          if (gate != nullptr) gate->Enter();
          if (count != nullptr) count->fetch_add(1);
          req.options.plan_cache = nullptr;
          return inner_.Optimize(StrategyId::kLecStatic, req);
        });
  }
  const Optimizer& facade() const { return facade_; }

 private:
  Optimizer inner_;
  Optimizer facade_;
};

class ServePipelineTest : public ::testing::Test {
 protected:
  CostModel model_;
  Optimizer plain_;
};

TEST_F(ServePipelineTest, CoalescedWaitersShareOneBitIdenticalComputation) {
  Gate gate;
  std::atomic<int> computes{0};
  GatedOptimizer gated(&gate, &computes);
  ServePipeline::Options opts;
  opts.workers = 2;
  opts.optimizer = &gated.facade();
  ServePipeline pipeline(opts);

  serde::ServeRequest request = MakeRequest(1);
  ServeTicket leader = pipeline.Submit(request);
  gate.WaitEntered(1);  // leader is mid-compute — duplicates must attach
  std::vector<ServeTicket> waiters;
  for (int i = 0; i < 4; ++i) waiters.push_back(pipeline.Submit(request));
  EXPECT_EQ(pipeline.stats().coalesced, 4u);
  gate.Open();

  OptimizeResult expected =
      Reference(request, StrategyId::kLecStatic, model_, plain_);
  const ServeOutcome& lead = leader.Wait();
  ASSERT_EQ(lead.status, ServeStatus::kOk);
  EXPECT_FALSE(lead.coalesced);
  ExpectBitEqual(lead.result, expected);
  for (const ServeTicket& t : waiters) {
    const ServeOutcome& out = t.Wait();
    ASSERT_EQ(out.status, ServeStatus::kOk);
    EXPECT_TRUE(out.coalesced);
    EXPECT_FALSE(out.degraded);
    ExpectBitEqual(out.result, expected);
  }
  EXPECT_EQ(computes.load(), 1);
  ServePipeline::Stats stats = pipeline.stats();
  EXPECT_EQ(stats.submitted, 5u);
  EXPECT_EQ(stats.served, 5u);
  EXPECT_EQ(stats.computed, 1u);
}

TEST_F(ServePipelineTest, QueueFullRejectsImmediatelyWithTypedStatus) {
  Gate gate;
  GatedOptimizer gated(&gate, nullptr);
  ServePipeline::Options opts;
  opts.workers = 1;
  opts.queue_capacity = 1;
  opts.optimizer = &gated.facade();
  ServePipeline pipeline(opts);

  ServeTicket a = pipeline.Submit(MakeRequest(10));
  gate.WaitEntered(1);  // worker busy on A; the queue is empty again
  ServeTicket b = pipeline.Submit(MakeRequest(11));  // takes the only slot
  ServeTicket c = pipeline.Submit(MakeRequest(12));  // must bounce
  EXPECT_TRUE(c.Done());  // rejection is immediate, no worker involved
  const ServeOutcome& rejected = c.Wait();
  EXPECT_EQ(rejected.status, ServeStatus::kRejected);
  EXPECT_EQ(pipeline.stats().rejected, 1u);
  EXPECT_EQ(pipeline.stats().queue_depth_hwm, 1u);

  gate.Open();
  EXPECT_EQ(a.Wait().status, ServeStatus::kOk);
  EXPECT_EQ(b.Wait().status, ServeStatus::kOk);
}

TEST_F(ServePipelineTest, DeadlineDegradationIsDeterministicUnderManualClock) {
  auto now = std::make_shared<std::atomic<double>>(100.0);
  ServePipeline::Options opts;
  opts.workers = 1;
  opts.min_degrade_headroom_seconds = 10.0;
  opts.clock = [now] { return now->load(); };
  ServePipeline pipeline(opts);

  serde::ServeRequest request = MakeRequest(20);

  // Budget below the headroom floor: the worker must not start the full
  // optimization; it serves the fallback and stamps the outcome.
  ServeOutcome degraded = pipeline.Submit(request, 5.0).Wait();
  ASSERT_EQ(degraded.status, ServeStatus::kOk);
  EXPECT_TRUE(degraded.degraded);
  ExpectBitEqual(degraded.result,
                 Reference(request, StrategyId::kLsc, model_, plain_));

  // Ample budget: full fidelity.
  ServeOutcome full = pipeline.Submit(request, 1000.0).Wait();
  ASSERT_EQ(full.status, ServeStatus::kOk);
  EXPECT_FALSE(full.degraded);
  ExpectBitEqual(full.result,
                 Reference(request, StrategyId::kLecStatic, model_, plain_));

  // An exhausted budget degrades regardless of the estimate.
  now->store(200.0);
  ServeOutcome late = pipeline.Submit(request, 0.0).Wait();
  ASSERT_EQ(late.status, ServeStatus::kOk);
  EXPECT_TRUE(late.degraded);

  // No budget at all never degrades.
  ServeOutcome open = pipeline.Submit(request).Wait();
  ASSERT_EQ(open.status, ServeStatus::kOk);
  EXPECT_FALSE(open.degraded);

  EXPECT_EQ(pipeline.stats().degraded, 2u);
}

TEST_F(ServePipelineTest, EstimateCalibratesFromNonDegradedServesOnly) {
  auto now = std::make_shared<std::atomic<double>>(0.0);
  ServePipeline::Options opts;
  opts.workers = 1;
  opts.clock = [now] { return now->load(); };

  // Each compute "takes" 4 seconds on the manual clock: advance it from
  // inside the strategy, which runs exactly once per computed job.
  Optimizer facade;
  Optimizer inner;
  facade.Register(StrategyId::kLecStatic,
                  [&inner, now](OptimizeRequest req) {
                    now->fetch_add(4.0);
                    req.options.plan_cache = nullptr;
                    return inner.Optimize(StrategyId::kLecStatic, req);
                  });
  opts.optimizer = &facade;
  ServePipeline pipeline(opts);

  serde::ServeRequest request = MakeRequest(30);
  EXPECT_DOUBLE_EQ(pipeline.EstimateSeconds(), 0.0);
  pipeline.Submit(request, 1000.0).Wait();
  // First observation seeds the EWMA directly.
  EXPECT_DOUBLE_EQ(pipeline.EstimateSeconds(), 4.0);

  // A budget below the calibrated estimate now degrades. The degraded
  // serve (fallback runs, taking ~0 clock time) only NUDGES the estimate
  // toward the observed fallback cost at the slow decay rate — one
  // overload blip cannot whipsaw the full-compute estimate, but it does
  // move it (the pre-fix behavior froze it at 4.0 forever; see the
  // sustained-overload test below).
  serde::ServeRequest other = MakeRequest(31);
  ServeOutcome out = pipeline.Submit(other, 2.0).Wait();
  ASSERT_EQ(out.status, ServeStatus::kOk);
  EXPECT_TRUE(out.degraded);
  EXPECT_DOUBLE_EQ(pipeline.EstimateSeconds(), 0.95 * 4.0);
  EXPECT_DOUBLE_EQ(pipeline.FallbackEstimateSeconds(), 0.0);
}

TEST_F(ServePipelineTest, SustainedOverloadDecaysEstimateAndProbesRecovery) {
  // Regression: the estimate EWMA used to update only on non-degraded
  // computes, so once the estimate exceeded every caller's budget the
  // pipeline degraded forever — the estimate froze at its last
  // pre-overload value even after computes got cheap again. The fix
  // decays the estimate toward the observed fallback cost on every
  // degraded serve, so sustained overload eventually probes a full
  // compute and recalibrates.
  auto now = std::make_shared<std::atomic<double>>(0.0);
  ServePipeline::Options opts;
  opts.workers = 1;
  opts.clock = [now] { return now->load(); };

  Optimizer facade;
  Optimizer inner;
  facade.Register(StrategyId::kLecStatic,
                  [&inner, now](OptimizeRequest req) {
                    now->fetch_add(4.0);  // the "expensive" full compute
                    req.options.plan_cache = nullptr;
                    return inner.Optimize(StrategyId::kLecStatic, req);
                  });
  facade.Register(StrategyId::kLsc, [&inner, now](OptimizeRequest req) {
    now->fetch_add(0.5);  // the cheap fallback
    req.options.plan_cache = nullptr;
    return inner.Optimize(StrategyId::kLsc, req);
  });
  opts.optimizer = &facade;
  ServePipeline pipeline(opts);

  serde::ServeRequest request = MakeRequest(32);
  pipeline.Submit(request, 1000.0).Wait();
  ASSERT_DOUBLE_EQ(pipeline.EstimateSeconds(), 4.0);

  // Sustained overload: every caller arrives with a 2-second budget.
  // Each degraded serve decays the estimate by one step of
  //   e' = (1 - 0.05) * e + 0.05 * fallback_cost
  // so e_k = 0.95^k * 4 + (1 - 0.95^k) * 0.5, which crosses below the
  // 2-second budget at k = 17 — the 18th serve runs the full compute.
  OptimizeResult fallback_ref =
      Reference(request, StrategyId::kLsc, model_, plain_);
  int degraded_rounds = 0;
  double prev_estimate = pipeline.EstimateSeconds();
  for (int round = 0; round < 40; ++round) {
    ServeOutcome out = pipeline.Submit(request, 2.0).Wait();
    ASSERT_EQ(out.status, ServeStatus::kOk);
    if (!out.degraded) break;  // the probe: overload no longer absorbing
    ++degraded_rounds;
    ExpectBitEqual(out.result, fallback_ref);
    double estimate = pipeline.EstimateSeconds();
    EXPECT_LT(estimate, prev_estimate);  // never frozen
    double expected = std::pow(0.95, degraded_rounds) * 4.0 +
                      (1.0 - std::pow(0.95, degraded_rounds)) * 0.5;
    EXPECT_NEAR(estimate, expected, 1e-12);
    EXPECT_DOUBLE_EQ(pipeline.FallbackEstimateSeconds(), 0.5);
    prev_estimate = estimate;
  }
  // The loop must have ended via a full-fidelity probe, not exhaustion.
  EXPECT_EQ(degraded_rounds, 17);
  // The probe observed the still-expensive compute and recalibrated the
  // estimate upward (0.8 * e + 0.2 * 4.0) — back above the budget, so
  // the NEXT serve degrades again: the pipeline oscillates between
  // mostly-degraded serves and occasional probes instead of freezing.
  EXPECT_GT(pipeline.EstimateSeconds(), 2.0);
  ServeOutcome again = pipeline.Submit(request, 2.0).Wait();
  ASSERT_EQ(again.status, ServeStatus::kOk);
  EXPECT_TRUE(again.degraded);
}

TEST_F(ServePipelineTest, ShutdownDrainsAdmittedWorkAndRefusesNewWork) {
  ServePipeline::Options opts;
  opts.workers = 1;  // jobs are still queued when Shutdown() lands
  ServePipeline pipeline(opts);
  std::vector<ServeTicket> tickets;
  for (uint64_t s = 40; s < 45; ++s) {
    tickets.push_back(pipeline.Submit(MakeRequest(s)));
  }
  pipeline.Shutdown();
  for (const ServeTicket& t : tickets) {
    ASSERT_TRUE(t.Done());  // Shutdown() returns only once all resolved
    EXPECT_EQ(t.Wait().status, ServeStatus::kOk);
  }
  ServeOutcome refused = pipeline.Submit(MakeRequest(46)).Wait();
  EXPECT_EQ(refused.status, ServeStatus::kShutdown);
  EXPECT_EQ(pipeline.stats().shutdown, 1u);
  pipeline.Shutdown();  // idempotent
}

TEST_F(ServePipelineTest, MissThenInsertRaceCostsExactlyOneComputation) {
  // PR-5 regression: two near-simultaneous misses on the same signature
  // both computed (the cache's lookup and insert are not one atomic
  // step). Routed through the singleflight table, a cold 16-way burst
  // from 4 submitter threads must cost exactly ONE strategy invocation.
  std::atomic<int> computes{0};
  GatedOptimizer gated(nullptr, &computes);
  PlanCache cache;
  ServePipeline::Options opts;
  opts.workers = 4;
  opts.plan_cache = &cache;
  opts.optimizer = &gated.facade();
  ServePipeline pipeline(opts);

  serde::ServeRequest request = MakeRequest(50);
  std::vector<std::thread> submitters;
  std::vector<ServeTicket> tickets(16);
  for (int t = 0; t < 4; ++t) {
    submitters.emplace_back([&, t] {
      for (int i = 0; i < 4; ++i) {
        tickets[static_cast<size_t>(t * 4 + i)] = pipeline.Submit(request);
      }
    });
  }
  for (std::thread& t : submitters) t.join();
  OptimizeResult expected =
      Reference(request, StrategyId::kLecStatic, model_, plain_);
  for (const ServeTicket& t : tickets) {
    const ServeOutcome& out = t.Wait();
    ASSERT_EQ(out.status, ServeStatus::kOk);
    ExpectBitEqual(out.result, expected);
  }
  EXPECT_EQ(computes.load(), 1);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().insertions, 1u);
}

TEST_F(ServePipelineTest, CoalesceOffAblationComputesEveryDuplicate) {
  Gate gate;
  std::atomic<int> computes{0};
  GatedOptimizer gated(&gate, &computes);
  ServePipeline::Options opts;
  opts.workers = 1;
  opts.coalesce = false;
  opts.optimizer = &gated.facade();
  ServePipeline pipeline(opts);

  serde::ServeRequest request = MakeRequest(60);
  std::vector<ServeTicket> tickets;
  for (int i = 0; i < 3; ++i) tickets.push_back(pipeline.Submit(request));
  gate.Open();
  for (const ServeTicket& t : tickets) {
    EXPECT_EQ(t.Wait().status, ServeStatus::kOk);
  }
  EXPECT_EQ(computes.load(), 3);
  EXPECT_EQ(pipeline.stats().coalesced, 0u);
}

TEST_F(ServePipelineTest, UnknownStrategyResolvesTypedErrorImmediately) {
  ServePipeline pipeline(ServePipeline::Options{});
  ServeTicket t = pipeline.Submit(MakeRequest(70, "no_such_strategy"));
  EXPECT_TRUE(t.Done());
  const ServeOutcome& out = t.Wait();
  EXPECT_EQ(out.status, ServeStatus::kError);
  EXPECT_NE(out.error.find("no_such_strategy"), std::string::npos);
  EXPECT_EQ(pipeline.stats().errors, 1u);
}

TEST_F(ServePipelineTest, FourThreadHammerMatchesSequentialFacadeBitForBit) {
  PlanCache cache;
  ServePipeline::Options opts;
  opts.workers = 4;
  opts.plan_cache = &cache;
  ServePipeline pipeline(opts);

  // 8 unique workloads across two strategies, 96 submissions from 4
  // threads in an interleaving-dependent order — every outcome must still
  // be bit-identical to its sequential reference.
  const char* strategies[2] = {"lec_static", "lsc"};
  std::vector<serde::ServeRequest> corpus;
  for (uint64_t s = 0; s < 8; ++s) {
    corpus.push_back(MakeRequest(80 + s, strategies[s % 2]));
  }
  std::vector<OptimizeResult> expected;
  for (const serde::ServeRequest& r : corpus) {
    expected.push_back(
        Reference(r, *ParseStrategy(r.strategy), model_, plain_));
  }

  std::vector<std::vector<ServeTicket>> issued(4);
  std::vector<std::thread> submitters;
  for (int t = 0; t < 4; ++t) {
    submitters.emplace_back([&, t] {
      Rng rng(900 + static_cast<uint64_t>(t));
      for (int i = 0; i < 24; ++i) {
        size_t pick = static_cast<size_t>(rng.UniformInt(0, 7));
        issued[static_cast<size_t>(t)].push_back(
            pipeline.Submit(corpus[pick]));
      }
    });
  }
  for (std::thread& t : submitters) t.join();
  for (int t = 0; t < 4; ++t) {
    Rng rng(900 + static_cast<uint64_t>(t));  // replay the picks
    for (int i = 0; i < 24; ++i) {
      size_t pick = static_cast<size_t>(rng.UniformInt(0, 7));
      const ServeOutcome& out = issued[static_cast<size_t>(t)]
                                    [static_cast<size_t>(i)].Wait();
      ASSERT_EQ(out.status, ServeStatus::kOk);
      ExpectBitEqual(out.result, expected[pick]);
    }
  }
  ServePipeline::Stats stats = pipeline.stats();
  EXPECT_EQ(stats.submitted, 96u);
  EXPECT_EQ(stats.served, 96u);
  EXPECT_EQ(stats.served + stats.rejected + stats.shutdown + stats.errors,
            stats.submitted);
}

}  // namespace
}  // namespace lec
