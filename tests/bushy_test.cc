#include "optimizer/bushy.h"

#include <gtest/gtest.h>

#include "cost/expected_cost.h"
#include "optimizer/algorithm_c.h"
#include "optimizer/exhaustive.h"
#include "optimizer/system_r.h"
#include "query/generator.h"

namespace lec {
namespace {

Distribution TestMemory() {
  return Distribution({{30, 0.3}, {300, 0.4}, {3000, 0.3}});
}

int CountBushyJoins(const PlanPtr& p) {
  if (!p) return 0;
  int self = p->kind == PlanNode::Kind::kJoin &&
                     p->right->kind == PlanNode::Kind::kJoin
                 ? 1
                 : 0;
  return self + CountBushyJoins(p->left) + CountBushyJoins(p->right);
}

TEST(BushyTest, EnumerationCountsForChainOfThree) {
  // Chain 0-1-2, NL+GH only (no SM keys to multiply): left-deep orders
  // {01,2},{10,2},{12,0},{21,0} plus bushy-with-right-join variants
  // 0x(12),0x(21),2x(01),2x(10) — each with 2 methods per join.
  Catalog catalog;
  catalog.AddTable("A", 100);
  catalog.AddTable("B", 100);
  catalog.AddTable("C", 100);
  Query q;
  q.AddTable(0);
  q.AddTable(1);
  q.AddTable(2);
  q.AddPredicate(0, 1, 0.01);
  q.AddPredicate(1, 2, 0.01);
  OptimizerOptions opts;
  opts.join_methods = {JoinMethod::kNestedLoop, JoinMethod::kGraceHash};
  std::vector<PlanPtr> plans = EnumerateBushyPlans(q, catalog, opts);
  EXPECT_EQ(plans.size(), 8u * 4u);  // 8 shapes x 2 methods x 2 methods
  std::vector<PlanPtr> left_deep =
      EnumerateLeftDeepPlans(q, catalog, opts);
  EXPECT_GT(plans.size(), left_deep.size());
}

// The bushy DP matches exhaustive bushy enumeration under both objectives.
class BushyOracleTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BushyOracleTest, DpMatchesExhaustiveBushy) {
  Rng rng(GetParam());
  WorkloadOptions wopts;
  wopts.num_tables = 4;
  wopts.shape = static_cast<JoinGraphShape>(GetParam() % 5);
  wopts.order_by_probability = 0.5;
  Workload w = GenerateWorkload(wopts, &rng);
  CostModel model;
  OptimizerOptions opts;
  Distribution memory = TestMemory();

  std::vector<PlanPtr> all = EnumerateBushyPlans(w.query, w.catalog, opts);
  ASSERT_FALSE(all.empty());

  double best_lsc = std::numeric_limits<double>::infinity();
  double best_lec = std::numeric_limits<double>::infinity();
  for (const PlanPtr& p : all) {
    best_lsc = std::min(
        best_lsc, PlanCostAtMemory(p, w.query, w.catalog, model, 300));
    best_lec = std::min(best_lec, PlanExpectedCostStatic(p, w.query,
                                                         w.catalog, model,
                                                         memory));
  }
  OptimizeResult lsc = OptimizeBushyLsc(w.query, w.catalog, model, 300,
                                        opts);
  OptimizeResult lec =
      OptimizeBushyLec(w.query, w.catalog, model, memory, opts);
  EXPECT_NEAR(lsc.objective, best_lsc, 1e-9 * std::max(1.0, best_lsc));
  EXPECT_NEAR(lec.objective, best_lec, 1e-9 * std::max(1.0, best_lec));
}

INSTANTIATE_TEST_SUITE_P(Seeds, BushyOracleTest,
                         ::testing::Range<uint64_t>(900, 912));

// Bushy space contains every left-deep plan, so its optimum can only be
// equal or better.
class BushyDominatesLeftDeepTest
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BushyDominatesLeftDeepTest, BushyLecNeverWorse) {
  Rng rng(GetParam());
  WorkloadOptions wopts;
  wopts.num_tables = static_cast<int>(4 + GetParam() % 3);
  wopts.shape = static_cast<JoinGraphShape>(GetParam() % 5);
  wopts.order_by_probability = 0.4;
  Workload w = GenerateWorkload(wopts, &rng);
  CostModel model;
  Distribution memory = TestMemory();
  OptimizeResult left_deep =
      OptimizeLecStatic(w.query, w.catalog, model, memory);
  OptimizeResult bushy =
      OptimizeBushyLec(w.query, w.catalog, model, memory);
  EXPECT_LE(bushy.objective,
            left_deep.objective + 1e-9 * left_deep.objective);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BushyDominatesLeftDeepTest,
                         ::testing::Range<uint64_t>(920, 940));

TEST(BushyTest, FindsGenuinelyBushyWinner) {
  // With the Shapiro formulas (Grace hash keyed on the *smaller* input)
  // left-deep plans are near-optimal for most queries — the classic
  // finding — but strict bushy wins do exist. This cycle workload (found
  // by seeded search, generator seed 357) gains 24%: the bushy plan joins
  // the two cycle halves independently before crossing.
  Rng rng(357);
  WorkloadOptions wopts;
  wopts.num_tables = 4;
  wopts.shape = JoinGraphShape::kCycle;
  wopts.order_by_probability = 0.4;
  Workload w = GenerateWorkload(wopts, &rng);
  CostModel model;
  Distribution memory({{25, 0.3}, {400, 0.4}, {6000, 0.3}});
  OptimizeResult bushy =
      OptimizeBushyLec(w.query, w.catalog, model, memory);
  OptimizeResult left =
      OptimizeLecStatic(w.query, w.catalog, model, memory);
  EXPECT_LT(bushy.objective, left.objective * 0.85);
  EXPECT_GT(CountBushyJoins(bushy.plan), 0);
}

TEST(BushyTest, PointMassReducesToBushyLsc) {
  Rng rng(7);
  WorkloadOptions wopts;
  wopts.num_tables = 5;
  Workload w = GenerateWorkload(wopts, &rng);
  CostModel model;
  OptimizeResult lec = OptimizeBushyLec(w.query, w.catalog, model,
                                        Distribution::PointMass(450));
  OptimizeResult lsc = OptimizeBushyLsc(w.query, w.catalog, model, 450);
  EXPECT_NEAR(lec.objective, lsc.objective, 1e-9 * lsc.objective);
}

}  // namespace
}  // namespace lec
