// The metamorphic fuzz driver: seed encoding round-trips, the case
// schedule covers the advertised space, and a seeded campaign across all
// five shapes and both spread axes runs violation-free.
#include "verify/fuzz_driver.h"

#include <gtest/gtest.h>

#include <set>

namespace lec::verify {
namespace {

TEST(FuzzCaseTest, EncodeDecodeRoundTrip) {
  FuzzCase c;
  c.seed = 987654321;
  c.shape = JoinGraphShape::kClique;
  c.num_tables = 4;
  c.selectivity_spread = 3.0;
  c.table_size_spread = 5.0;
  c.order_by = true;
  std::string encoded = c.Encode();
  EXPECT_EQ(encoded, "f1:clique:4:987654321:3:5:1");
  auto decoded = FuzzCase::Decode(encoded);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->seed, c.seed);
  EXPECT_EQ(decoded->shape, c.shape);
  EXPECT_EQ(decoded->num_tables, c.num_tables);
  EXPECT_DOUBLE_EQ(decoded->selectivity_spread, c.selectivity_spread);
  EXPECT_DOUBLE_EQ(decoded->table_size_spread, c.table_size_spread);
  EXPECT_EQ(decoded->order_by, c.order_by);
  // And the schedule's own cases round-trip too.
  for (int round = 0; round < 10; ++round) {
    FuzzCase scheduled = CaseForRound(42, round);
    auto back = FuzzCase::Decode(scheduled.Encode());
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->Encode(), scheduled.Encode());
  }
}

TEST(FuzzCaseTest, DecodeRejectsMalformedSeeds) {
  EXPECT_FALSE(FuzzCase::Decode("").has_value());
  EXPECT_FALSE(FuzzCase::Decode("f2:chain:4:1:1:1:0").has_value());  // ver
  EXPECT_FALSE(FuzzCase::Decode("f1:triangle:4:1:1:1:0").has_value());
  EXPECT_FALSE(FuzzCase::Decode("f1:chain:4:1:1:1").has_value());  // short
  EXPECT_FALSE(
      FuzzCase::Decode("f1:chain:4:1:1:1:0:9").has_value());  // trailing
  EXPECT_FALSE(FuzzCase::Decode("f1:chain:x:1:1:1:0").has_value());
  EXPECT_FALSE(FuzzCase::Decode("f1:chain:1:1:1:1:0").has_value());  // n<2
  EXPECT_FALSE(
      FuzzCase::Decode("f1:chain:4:1:0.5:1:0").has_value());  // spread<1
  // Trailing junk in a numeric field is malformed, not a prefix-parse.
  EXPECT_FALSE(FuzzCase::Decode("f1:chain:4junk:1:1:1:0").has_value());
  EXPECT_FALSE(FuzzCase::Decode("f1:chain:4:1:3.0abc:1:0").has_value());
  EXPECT_FALSE(FuzzCase::Decode("f1:chain:4:1:1:1:0x").has_value());
  // Above the exhaustive-oracle ceiling: reject at decode rather than
  // aborting mid-replay.
  EXPECT_FALSE(FuzzCase::Decode("f1:chain:9:1:1:1:0").has_value());
  EXPECT_TRUE(FuzzCase::Decode("f1:chain:8:1:1:1:0").has_value());
  // Non-finite spreads and stoull's negative-wraparound seeds are
  // malformed, not silently-different worlds.
  EXPECT_FALSE(FuzzCase::Decode("f1:chain:4:1:nan:1:0").has_value());
  EXPECT_FALSE(FuzzCase::Decode("f1:chain:4:1:inf:1:0").has_value());
  EXPECT_FALSE(FuzzCase::Decode("f1:chain:4:-1:1:1:0").has_value());
}

TEST(FuzzCaseTest, EncodeRoundTripsNonShortDecimalSpreads) {
  // The seed format must replay the exact world: a spread that is not a
  // short decimal has to survive Encode/Decode bit-for-bit.
  FuzzCase c;
  c.selectivity_spread = 1.0000000123;
  c.table_size_spread = 2.7182818284590452;
  auto back = FuzzCase::Decode(c.Encode());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->selectivity_spread, c.selectivity_spread);
  EXPECT_EQ(back->table_size_spread, c.table_size_spread);
}

TEST(FuzzScheduleTest, CoversShapesSpreadsAndOrderBy) {
  std::set<JoinGraphShape> shapes;
  bool sel_spread_seen = false;
  bool size_spread_seen = false;
  bool order_by_seen = false;
  bool no_order_by_seen = false;
  for (int round = 0; round < 40; ++round) {
    FuzzCase c = CaseForRound(20260729, round);
    shapes.insert(c.shape);
    sel_spread_seen |= c.selectivity_spread > 1.0;
    size_spread_seen |= c.table_size_spread > 1.0;
    order_by_seen |= c.order_by;
    no_order_by_seen |= !c.order_by;
    EXPECT_GE(c.num_tables, 3);
    EXPECT_LE(c.num_tables, 6);
  }
  EXPECT_EQ(shapes.size(), 5u);  // all five JoinGraphShapes
  EXPECT_TRUE(sel_spread_seen);
  EXPECT_TRUE(size_spread_seen);
  EXPECT_TRUE(order_by_seen);
  EXPECT_TRUE(no_order_by_seen);
  // The schedule is a pure function of (base_seed, round).
  EXPECT_EQ(CaseForRound(7, 3).Encode(), CaseForRound(7, 3).Encode());
}

TEST(FuzzDriverTest, SeededCampaignRunsClean) {
  FuzzOptions options;
  options.rounds = 15;
  options.base_seed = 20260729;
  options.mc_samples = 150;
  FuzzReport report = RunFuzz(options);
  EXPECT_EQ(report.rounds_run, 15);
  EXPECT_GT(report.invariants_checked, 200u);
  for (const FuzzViolation& v : report.violations) {
    ADD_FAILURE() << v.invariant << " on " << v.fuzz_case.Encode() << ": "
                  << v.detail;
  }
}

TEST(FuzzDriverTest, CheckCaseIsDeterministic) {
  FuzzCase c = CaseForRound(99, 2);
  FuzzOptions options;
  options.mc_samples = 150;
  size_t checked_a = 0;
  size_t checked_b = 0;
  std::vector<FuzzViolation> a = CheckCase(c, options, &checked_a);
  std::vector<FuzzViolation> b = CheckCase(c, options, &checked_b);
  EXPECT_EQ(checked_a, checked_b);
  EXPECT_EQ(a.size(), b.size());
  EXPECT_TRUE(a.empty()) << a.front().invariant << ": " << a.front().detail;
}

TEST(FuzzDriverTest, McInvariantCanBeDisabled) {
  FuzzCase c = CaseForRound(5, 0);
  FuzzOptions with_mc;
  with_mc.mc_samples = 150;
  FuzzOptions without_mc;
  without_mc.check_mc = false;
  size_t with = 0;
  size_t without = 0;
  CheckCase(c, with_mc, &with);
  CheckCase(c, without_mc, &without);
  EXPECT_GT(with, without);  // the MC checks really ran
}

}  // namespace
}  // namespace lec::verify
