#include "storage/join_operators.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "cost/cost_model.h"
#include "storage/external_sort.h"
#include "util/rng.h"

namespace lec {
namespace {

JoinColumnSpec spec_default() { return JoinColumnSpec{}; }

std::vector<int64_t> PayloadMultiset(const TableData& t) {
  std::vector<int64_t> out;
  for (const Tuple& x : t.AllTuples()) out.push_back(x.payload);
  std::sort(out.begin(), out.end());
  return out;
}

struct JoinCase {
  size_t left_pages;
  size_t right_pages;
  int64_t key_range;
  size_t memory;
};

class JoinCorrectnessTest
    : public ::testing::TestWithParam<std::tuple<JoinMethod, int>> {};

TEST_P(JoinCorrectnessTest, MatchesNaiveReference) {
  auto [method, case_idx] = GetParam();
  const JoinCase cases[] = {
      {8, 6, 40, 20},    // both fit in memory
      {20, 12, 100, 6},  // spills
      {16, 16, 64, 4},   // tight memory, equal sizes
      {3, 30, 50, 5},    // asymmetric
  };
  JoinCase c = cases[case_idx];
  Rng rng(static_cast<uint64_t>(case_idx) * 13 + 7);
  TableData left = GenerateTable(c.left_pages, c.key_range, 0, &rng);
  TableData right = GenerateTable(c.right_pages, c.key_range, 0, &rng);
  JoinColumnSpec spec;  // join on col0 = col0
  TableData expected = NaiveJoinReference(left, right, spec);
  BufferPool pool(c.memory);
  TableData got;
  switch (method) {
    case JoinMethod::kSortMerge:
      got = SortMergeJoinOp(&pool, left, right, spec);
      break;
    case JoinMethod::kGraceHash:
      got = GraceHashJoinOp(&pool, left, right, spec);
      break;
    case JoinMethod::kNestedLoop:
      got = NestedLoopJoinOp(&pool, left, right, spec);
      break;
    case JoinMethod::kHybridHash:
      GTEST_SKIP() << "hybrid hash is analytic-only";
  }
  EXPECT_EQ(PayloadMultiset(got), PayloadMultiset(expected))
      << ToString(method) << " case " << case_idx;
  EXPECT_GT(expected.num_tuples(), 0u) << "vacuous test";
}

INSTANTIATE_TEST_SUITE_P(
    MethodsAndCases, JoinCorrectnessTest,
    ::testing::Combine(::testing::ValuesIn(kAllJoinMethods),
                       ::testing::Values(0, 1, 2, 3)));

TEST(JoinOperatorsTest, ColumnSpecRoutesOutputs) {
  Rng rng(1);
  TableData left = GenerateTable(2, 10, 20, &rng);
  TableData right = GenerateTable(2, 10, 30, &rng);
  JoinColumnSpec spec;
  spec.left_col = 0;
  spec.right_col = 0;
  spec.out0_side = 0;
  spec.out0_col = 1;  // left's col1
  spec.out1_side = 1;
  spec.out1_col = 1;  // right's col1
  TableData out = NaiveJoinReference(left, right, spec);
  for (const Tuple& t : out.AllTuples()) {
    EXPECT_LT(t.cols[0], 20);
    EXPECT_LT(t.cols[1], 30);
  }
}

TEST(JoinOperatorsTest, SortMergeOutputSortedOnKey) {
  Rng rng(2);
  TableData left = GenerateTable(10, 50, 0, &rng);
  TableData right = GenerateTable(8, 50, 0, &rng);
  JoinColumnSpec spec;
  spec.out0_side = 0;
  spec.out0_col = 0;  // output col0 = the join key
  BufferPool pool(4);
  TableData out = SortMergeJoinOp(&pool, left, right, spec);
  std::vector<Tuple> tuples = out.AllTuples();
  for (size_t i = 1; i < tuples.size(); ++i) {
    EXPECT_LE(tuples[i - 1].cols[0], tuples[i].cols[0]);
  }
}

TEST(JoinOperatorsTest, NestedLoopIoMatchesModelExactly) {
  CostModel model;
  Rng rng(3);
  // In-memory regime: S + 2 <= M.
  {
    TableData left = GenerateTable(30, 200, 0, &rng);
    TableData right = GenerateTable(10, 200, 0, &rng);
    BufferPool pool(12);
    NestedLoopJoinOp(&pool, left, right, spec_default());
    EXPECT_DOUBLE_EQ(static_cast<double>(pool.total_io()),
                     model.JoinCost(JoinMethod::kNestedLoop, 30, 10, 12));
  }
  // Page-loop regime: M < S + 2.
  {
    TableData left = GenerateTable(6, 200, 0, &rng);
    TableData right = GenerateTable(8, 200, 0, &rng);
    BufferPool pool(7);
    NestedLoopJoinOp(&pool, left, right, spec_default());
    EXPECT_DOUBLE_EQ(static_cast<double>(pool.total_io()),
                     model.JoinCost(JoinMethod::kNestedLoop, 6, 8, 7));
  }
}

TEST(JoinOperatorsTest, SortMergeIoTracksModelShape) {
  // Measured SM I/O = model + one extra read of each input (the model's
  // stylized 2x counts run formation only; the final merge re-read adds
  // |A|+|B|). The *threshold structure* must match: crossing sqrt(L)
  // upward removes a full 2(|A|+|B|) pass.
  Rng rng(4);
  TableData left = GenerateTable(100, 2000, 0, &rng);
  TableData right = GenerateTable(60, 2000, 0, &rng);
  auto measure = [&](size_t memory) {
    BufferPool pool(memory);
    SortMergeJoinOp(&pool, left, right, spec_default());
    return static_cast<double>(pool.total_io());
  };
  double plenty = measure(64);  // runs: 2+1 -> single merge-join pass
  double tight = measure(5);    // many runs -> extra merge passes
  EXPECT_DOUBLE_EQ(plenty, 3.0 * 160);  // 2x run formation + 1x final read
  EXPECT_GE(tight, plenty + 2.0 * 160 - 1);
}

TEST(JoinOperatorsTest, SortMergePresortedSkipsRunFormation) {
  Rng rng(5);
  TableData left = GenerateTable(40, 500, 0, &rng);
  TableData right = GenerateTable(30, 500, 0, &rng);
  BufferPool sort_pool(64);
  TableData left_sorted = ExternalSortOp(&sort_pool, left, 0);
  TableData right_sorted = ExternalSortOp(&sort_pool, right, 0);
  BufferPool pool(64);
  TableData out = SortMergeJoinOp(&pool, left_sorted, right_sorted,
                                  spec_default(), /*left_sorted=*/true,
                                  /*right_sorted=*/true);
  // Pure merge: one read of each side, nothing written.
  EXPECT_EQ(pool.reads(), 70u);
  EXPECT_EQ(pool.writes(), 0u);
  // Same result as unsorted-path join.
  BufferPool pool2(64);
  TableData out2 = SortMergeJoinOp(&pool2, left, right, spec_default());
  EXPECT_EQ(PayloadMultiset(out), PayloadMultiset(out2));
}

TEST(JoinOperatorsTest, GraceHashIoTracksModelShape) {
  Rng rng(6);
  TableData left = GenerateTable(100, 3000, 0, &rng);
  TableData right = GenerateTable(36, 3000, 0, &rng);
  auto measure = [&](size_t memory) {
    BufferPool pool(memory);
    GraceHashJoinOp(&pool, left, right, spec_default());
    return static_cast<double>(pool.total_io());
  };
  // One partition pass (F = 36; sqrt(F) = 6 -> M = 10 comfortably enough):
  // read both (136) + write both (136) + join-pass read (136) = 3x.
  double one_pass = measure(10);
  // Slack: each of the M-1 partitions per side rounds up to a whole page.
  EXPECT_NEAR(one_pass, 3.0 * 136, 2.0 * 9);
  // Starved memory forces recursive partitioning: at least one extra pass
  // over (most of) the data.
  double starved = measure(3);
  EXPECT_GT(starved, one_pass + 100);
}

TEST(JoinOperatorsTest, GraceHashHandlesSkewWithoutLooping) {
  // All tuples share one key: partitions can never shrink; the max-depth
  // escape hatch must terminate and produce the right (quadratic) result.
  TableData left, right;
  for (size_t i = 0; i < 2 * kTuplesPerPage; ++i) {
    left.Append({{7, 0}, static_cast<int64_t>(i)});
    right.Append({{7, 0}, static_cast<int64_t>(1000 + i)});
  }
  BufferPool pool(3);
  TableData out = GraceHashJoinOp(&pool, left, right, spec_default());
  EXPECT_EQ(out.num_tuples(), 4 * kTuplesPerPage * kTuplesPerPage);
}

TEST(JoinOperatorsTest, DisjointKeysYieldEmptyResult) {
  TableData left, right;
  for (size_t i = 0; i < kTuplesPerPage; ++i) {
    left.Append({{static_cast<int64_t>(i), 0}, 0});
    right.Append({{static_cast<int64_t>(i + 1000), 0}, 0});
  }
  for (JoinMethod m : kAllJoinMethods) {
    BufferPool pool(8);
    TableData out;
    switch (m) {
      case JoinMethod::kSortMerge:
        out = SortMergeJoinOp(&pool, left, right, spec_default());
        break;
      case JoinMethod::kGraceHash:
        out = GraceHashJoinOp(&pool, left, right, spec_default());
        break;
      case JoinMethod::kNestedLoop:
        out = NestedLoopJoinOp(&pool, left, right, spec_default());
        break;
      case JoinMethod::kHybridHash:
        continue;  // analytic-only
    }
    EXPECT_EQ(out.num_tuples(), 0u) << ToString(m);
  }
}

}  // namespace
}  // namespace lec
