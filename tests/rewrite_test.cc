// Property suite for the logical rewrite layer (rewrite/rewrite.h):
// fixed-point termination under adversarial rule cycles, idempotence of
// the standard pipeline, per-pass counter conservation, and
// canonicalization invariance (every relabeling of a query maps to the
// same QuerySignature bytes whenever the canonical keys are distinct).
#include "rewrite/rewrite.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <utility>
#include <vector>

#include "query/generator.h"
#include "service/plan_cache.h"
#include "service/serde.h"
#include "util/rng.h"

namespace lec {
namespace {

Workload MakeWorkload(uint64_t seed, JoinGraphShape shape, int n,
                      double redundant = 0.0, double filters = 0.0,
                      int components = 1) {
  WorkloadOptions opts;
  opts.num_tables = n;
  opts.shape = shape;
  opts.redundant_edge_probability = redundant;
  opts.filter_probability = filters;
  opts.num_components = components;
  Rng rng(seed);
  return GenerateWorkload(opts, &rng);
}

/// Relabels `src` by `perm` (perm[p] = new position of original p),
/// preserving predicate and filter list order.
Workload Relabel(const Workload& src, const std::vector<int>& perm) {
  int n = src.query.num_tables();
  std::vector<int> inv(static_cast<size_t>(n));
  for (int p = 0; p < n; ++p) inv[static_cast<size_t>(perm[p])] = p;
  Workload out;
  out.catalog = src.catalog;
  for (int np = 0; np < n; ++np) {
    out.query.AddTable(src.query.table(inv[static_cast<size_t>(np)]));
  }
  for (int i = 0; i < src.query.num_predicates(); ++i) {
    const JoinPredicate& p = src.query.predicate(i);
    out.query.AddPredicate(static_cast<QueryPos>(perm[p.left]),
                           static_cast<QueryPos>(perm[p.right]),
                           p.selectivity);
  }
  for (int i = 0; i < src.query.num_filters(); ++i) {
    const FilterPredicate& f = src.query.filter(i);
    out.query.AddFilter(static_cast<QueryPos>(perm[f.table]), f.selectivity);
  }
  if (src.query.required_order()) {
    out.query.RequireOrder(*src.query.required_order());
  }
  return out;
}

// -- Fixed-point termination -------------------------------------------------

/// Adversarial rule: relabels positions 0 and 1 every time it runs, so it
/// "applies" forever — alone or as a cycle of two. Violates the documented
/// idempotence requirement on purpose to pin the manager's round budget.
class SwapPass : public rewrite::RewritePass {
 public:
  std::string_view name() const override { return "swap01"; }
  bool Apply(rewrite::RewriteUnit* unit) const override {
    int n = unit->query.num_tables();
    if (n < 2) return false;
    std::vector<int> perm(static_cast<size_t>(n));
    for (int p = 0; p < n; ++p) perm[static_cast<size_t>(p)] = p;
    std::swap(perm[0], perm[1]);
    Workload w;
    w.catalog = unit->catalog;
    w.query = unit->query;
    Workload re = Relabel(w, perm);
    unit->query = std::move(re.query);
    std::swap(unit->position_map[0], unit->position_map[1]);
    return true;
  }
};

TEST(RewriteFixedPointTest, AdversarialCycleExhaustsRoundBudget) {
  Workload w = MakeWorkload(7, JoinGraphShape::kChain, 4);
  rewrite::PassManager mgr(/*max_rounds=*/5);
  mgr.Add(std::make_unique<SwapPass>());
  mgr.Add(std::make_unique<SwapPass>());
  rewrite::RewriteOutcome out = mgr.Run(w.query, w.catalog);
  EXPECT_EQ(out.rounds, 5);
  EXPECT_FALSE(out.reached_fixed_point);
  // Every pass fired every round; the budget, not convergence, ended it.
  for (const rewrite::PassCounters& c : out.counters) {
    EXPECT_EQ(c.applied, 5u) << c.name;
    EXPECT_EQ(c.skipped, 0u) << c.name;
  }
  // An even number of swaps: the net relabeling is the identity, and the
  // position_map must say so.
  ASSERT_EQ(out.position_map.size(), 4u);
  for (QueryPos p = 0; p < 4; ++p) EXPECT_EQ(out.position_map[p], p);
}

TEST(RewriteFixedPointTest, StandardPipelineConverges) {
  Workload w = MakeWorkload(11, JoinGraphShape::kCycle, 5,
                            /*redundant=*/1.0, /*filters=*/1.0);
  rewrite::RewriteOutcome out =
      rewrite::StandardPassManager().Run(w.query, w.catalog);
  EXPECT_TRUE(out.reached_fixed_point);
  EXPECT_LT(out.rounds, 8);
  EXPECT_GE(out.total_applied(), 2u);  // pushdown + redundant at least
  EXPECT_EQ(out.query.num_filters(), 0);
  EXPECT_EQ(out.query.num_predicates(), 5);  // parallel edges collapsed
}

// -- Idempotence -------------------------------------------------------------

TEST(RewriteIdempotenceTest, SecondRunAppliesNothing) {
  for (uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    Workload w = MakeWorkload(seed, JoinGraphShape::kRandom, 6,
                              /*redundant=*/0.7, /*filters=*/0.7,
                              /*components=*/seed % 2 == 0 ? 2 : 1);
    rewrite::PassManager mgr = rewrite::StandardPassManager();
    rewrite::RewriteOutcome once = mgr.Run(w.query, w.catalog);
    rewrite::RewriteOutcome twice = mgr.Run(once.query, once.catalog);
    EXPECT_EQ(twice.total_applied(), 0u) << "seed " << seed;
    EXPECT_TRUE(twice.reached_fixed_point);
    EXPECT_EQ(twice.rounds, 1);
    // Byte-stable: re-running on the fixed point reproduces it exactly
    // (same catalog basis, so serde bytes compare directly).
    EXPECT_EQ(serde::ToString(twice.query), serde::ToString(once.query));
  }
}

// -- Counter conservation ----------------------------------------------------

TEST(RewriteCounterTest, AppliedPlusSkippedEqualsRounds) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    Workload w = MakeWorkload(seed, JoinGraphShape::kStar, 5,
                              /*redundant=*/0.5, /*filters=*/0.5);
    rewrite::RewriteOutcome out =
        rewrite::StandardPassManager().Run(w.query, w.catalog);
    ASSERT_EQ(out.counters.size(), 4u);
    for (const rewrite::PassCounters& c : out.counters) {
      EXPECT_EQ(c.applied + c.skipped, static_cast<size_t>(out.rounds))
          << c.name << " seed " << seed;
    }
  }
}

TEST(RewriteCounterTest, CountersForLooksUpByName) {
  Workload w = MakeWorkload(3, JoinGraphShape::kChain, 4, 0.0, 1.0);
  rewrite::RewriteOutcome out =
      rewrite::StandardPassManager().Run(w.query, w.catalog);
  const rewrite::PassCounters* c = out.counters_for("selection_pushdown");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->applied, 1u);
  EXPECT_EQ(out.counters_for("no_such_pass"), nullptr);
}

// -- Pass semantics ----------------------------------------------------------

TEST(RewritePassTest, PushdownShrinksBaseTablesAndClearsFilters) {
  Workload w = MakeWorkload(5, JoinGraphShape::kChain, 4, 0.0, 1.0);
  ASSERT_GT(w.query.num_filters(), 0);
  rewrite::PassManager mgr;
  mgr.Add(rewrite::MakeSelectionPushdownPass());
  rewrite::RewriteOutcome out = mgr.Run(w.query, w.catalog);
  EXPECT_EQ(out.query.num_filters(), 0);
  // Each filtered position's size distribution mean shrank by exactly the
  // filter's mean selectivity (I4 mean conservation through the fold).
  for (int i = 0; i < w.query.num_filters(); ++i) {
    const FilterPredicate& f = w.query.filter(i);
    double before =
        w.catalog.table(w.query.table(f.table)).SizeDistribution().Mean();
    double after = out.catalog.table(out.query.table(f.table))
                       .SizeDistribution()
                       .Mean();
    EXPECT_NEAR(after, before * f.selectivity.Mean(),
                1e-6 * before);
  }
}

TEST(RewritePassTest, CrossProductPassConnectsDisconnectedGraphs) {
  Workload w = MakeWorkload(9, JoinGraphShape::kChain, 6, 0.0, 0.0,
                            /*components=*/2);
  ASSERT_FALSE(w.query.IsConnected(w.query.AllTables()));
  rewrite::PassManager mgr;
  mgr.Add(rewrite::MakeCrossProductAvoidancePass());
  rewrite::RewriteOutcome out = mgr.Run(w.query, w.catalog);
  EXPECT_TRUE(out.query.IsConnected(out.query.AllTables()));
  // Derived edges are exactly selectivity-1 point masses: the unique
  // selectivity conserving |A x B| = |A| * |B|.
  for (int i = w.query.num_predicates(); i < out.query.num_predicates();
       ++i) {
    EXPECT_DOUBLE_EQ(out.query.predicate(i).selectivity.Mean(), 1.0);
  }
  // Connected graphs are left alone.
  Workload conn = MakeWorkload(9, JoinGraphShape::kChain, 6);
  rewrite::RewriteOutcome noop = mgr.Run(conn.query, conn.catalog);
  EXPECT_EQ(noop.total_applied(), 0u);
}

TEST(RewritePassTest, RedundantMergeConservesCombinedSelectivity) {
  Catalog catalog;
  Query q;
  q.AddTable(catalog.AddTable("a", 1000));
  q.AddTable(catalog.AddTable("b", 2000));
  q.AddPredicate(0, 1, 1e-3);
  q.AddPredicate(0, 1, 1e-2);
  q.AddPredicate(0, 1, 0.5);
  rewrite::PassManager mgr;
  mgr.Add(rewrite::MakeRedundantPredicatePass());
  rewrite::RewriteOutcome out = mgr.Run(q, catalog);
  ASSERT_EQ(out.query.num_predicates(), 1);
  EXPECT_NEAR(out.query.predicate(0).selectivity.Mean(), 1e-3 * 1e-2 * 0.5,
              1e-15);
}

TEST(RewritePassTest, RedundantMergeRemapsRequiredOrder) {
  Catalog catalog;
  Query q;
  q.AddTable(catalog.AddTable("a", 1000));
  q.AddTable(catalog.AddTable("b", 2000));
  q.AddTable(catalog.AddTable("c", 3000));
  q.AddPredicate(0, 1, 1e-3);
  q.AddPredicate(0, 1, 1e-2);  // parallel duplicate of predicate 0
  int tail = q.AddPredicate(1, 2, 1e-4);
  q.RequireOrder(tail);
  rewrite::PassManager mgr;
  mgr.Add(rewrite::MakeRedundantPredicatePass());
  rewrite::RewriteOutcome out = mgr.Run(q, catalog);
  ASSERT_EQ(out.query.num_predicates(), 2);
  // The ORDER BY followed its predicate to its post-merge index.
  ASSERT_TRUE(out.query.required_order().has_value());
  const JoinPredicate& ordered =
      out.query.predicate(*out.query.required_order());
  EXPECT_TRUE((ordered.left == 1 && ordered.right == 2) ||
              (ordered.left == 2 && ordered.right == 1));
}

// -- Canonicalization invariance --------------------------------------------

QuerySignature SignatureOf(const Workload& w, const CostModel& model,
                           const Distribution& memory) {
  rewrite::RewriteOutcome out =
      rewrite::StandardPassManager().Run(w.query, w.catalog);
  OptimizeRequest req;
  req.query = &out.query;
  req.catalog = &out.catalog;
  req.model = &model;
  req.memory = &memory;
  return QuerySignature::Compute(StrategyId::kLecStatic, req);
}

TEST(RewriteCanonicalizationTest, EveryRelabelingSharesSignatureBytes) {
  CostModel model;
  Distribution memory = Distribution::PointMass(64);
  Rng rng(99);
  int checked = 0;
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    JoinGraphShape shape = static_cast<JoinGraphShape>(seed % 5);
    Workload w = MakeWorkload(seed * 17, shape, 5,
                              /*redundant=*/0.4, /*filters=*/0.6);
    rewrite::RewriteOutcome canon =
        rewrite::StandardPassManager().Run(w.query, w.catalog);
    std::vector<uint64_t> keys =
        rewrite::CanonicalPositionKeys(canon.query, canon.catalog);
    std::sort(keys.begin(), keys.end());
    if (std::adjacent_find(keys.begin(), keys.end()) != keys.end()) {
      continue;  // tied keys: sharing not guaranteed (documented)
    }
    ++checked;
    QuerySignature base = SignatureOf(w, model, memory);
    for (int trial = 0; trial < 4; ++trial) {
      std::vector<int> perm(5);
      for (int p = 0; p < 5; ++p) perm[static_cast<size_t>(p)] = p;
      for (int p = 4; p > 0; --p) {
        std::swap(perm[static_cast<size_t>(p)],
                  perm[static_cast<size_t>(rng.UniformInt(0, p))]);
      }
      QuerySignature relabeled = SignatureOf(Relabel(w, perm), model, memory);
      EXPECT_EQ(relabeled.canonical, base.canonical)
          << "seed " << seed << " trial " << trial;
      EXPECT_EQ(relabeled.hash, base.hash);
    }
  }
  // The distinctness gate must not silently void the test.
  EXPECT_GE(checked, 5);
}

TEST(RewriteCanonicalizationTest, PositionMapIsAPermutation) {
  Workload w = MakeWorkload(21, JoinGraphShape::kRandom, 6,
                            /*redundant=*/0.5, /*filters=*/0.5);
  rewrite::RewriteOutcome out =
      rewrite::StandardPassManager().Run(w.query, w.catalog);
  ASSERT_EQ(out.position_map.size(), 6u);
  std::vector<QueryPos> sorted = out.position_map;
  std::sort(sorted.begin(), sorted.end());
  for (QueryPos p = 0; p < 6; ++p) EXPECT_EQ(sorted[p], p);
  // The table at rewritten position p is the original position_map[p]'s
  // table (possibly replaced by its filtered twin, which keeps the name
  // as a prefix).
  for (QueryPos p = 0; p < 6; ++p) {
    const std::string& rewritten =
        out.catalog.table(out.query.table(p)).name;
    const std::string& original =
        w.catalog.table(w.query.table(out.position_map[p])).name;
    EXPECT_EQ(rewritten.compare(0, original.size(), original), 0)
        << rewritten << " vs " << original;
  }
}

}  // namespace
}  // namespace lec
