// The measured-statistics contract (src/stats/): CountMinSketch never
// underestimates and its width/depth extremes behave per the bound,
// HyperLogLog merge is commutative/idempotent and its estimate tracks
// truth within the documented standard error, the deriver is
// byte-deterministic (same rows -> same ContentHash) and rejects empty
// ingests, and MaterializeAndMeasure's derived moments bracket exact
// ground truth while DriftTable reports exactly the replaced hashes.
#include "stats/table_stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "dist/builders.h"
#include "query/generator.h"
#include "stats/measure.h"
#include "storage/buffer_pool.h"
#include "storage/table_data.h"
#include "util/rng.h"

namespace lec::stats {
namespace {

TEST(CountMinSketchTest, NeverUnderestimatesAndIsExactWhenSparse) {
  CountMinSketch cms;  // 4096 x 5: 100 keys are far below collision range
  std::vector<uint64_t> truth(100);
  for (int64_t k = 0; k < 100; ++k) {
    truth[static_cast<size_t>(k)] = static_cast<uint64_t>(1 + (k % 7));
    cms.Add(k, truth[static_cast<size_t>(k)]);
  }
  for (int64_t k = 0; k < 100; ++k) {
    uint64_t est = cms.EstimateCount(k);
    EXPECT_GE(est, truth[static_cast<size_t>(k)]) << "key " << k;
    // Collisions in all 5 rows at this load are ~1e-8 probable, and the
    // hashing is deterministic: sparse estimates are exact.
    EXPECT_EQ(est, truth[static_cast<size_t>(k)]) << "key " << k;
  }
  EXPECT_EQ(cms.EstimateCount(100000), 0u);  // never-seen key
}

TEST(CountMinSketchTest, WidthOneDegeneratesToTotalCount) {
  // With one counter per row every key aliases every other: the estimate
  // collapses to the stream total — the bound's epsilon = e/width worst
  // case, still never an underestimate.
  CountMinSketch::Options opts;
  opts.width = 1;
  opts.depth = 3;
  CountMinSketch cms(opts);
  for (int64_t k = 0; k < 10; ++k) cms.Add(k);
  EXPECT_EQ(cms.total(), 10u);
  EXPECT_EQ(cms.EstimateCount(0), 10u);
  EXPECT_EQ(cms.EstimateCount(999), 10u);
  EXPECT_DOUBLE_EQ(cms.epsilon(), std::exp(1.0));
}

TEST(CountMinSketchTest, DepthOneAndShapeChecks) {
  CountMinSketch::Options shallow;
  shallow.width = 64;
  shallow.depth = 1;
  CountMinSketch a(shallow), b(shallow);
  a.Add(7, 3);
  b.Add(7, 5);
  // Single row: the inner product is that row's dot product exactly.
  EXPECT_DOUBLE_EQ(CountMinSketch::InnerProduct(a, b), 15.0);
  a.Merge(b);
  EXPECT_EQ(a.EstimateCount(7), 8u);
  EXPECT_EQ(a.total(), 8u);

  CountMinSketch other;  // default shape, mismatched
  EXPECT_THROW(CountMinSketch::InnerProduct(a, other), std::invalid_argument);
  EXPECT_THROW(a.Merge(other), std::invalid_argument);
  CountMinSketch::Options zero;
  zero.width = 0;
  EXPECT_THROW(CountMinSketch{zero}, std::invalid_argument);
}

TEST(HyperLogLogTest, MergeIsCommutativeAndIdempotent) {
  HyperLogLog a(10), b(10);
  for (int64_t k = 0; k < 500; ++k) a.Add(k);
  for (int64_t k = 300; k < 900; ++k) b.Add(k);  // overlapping sets

  HyperLogLog ab = a;
  ab.Merge(b);
  HyperLogLog ba = b;
  ba.Merge(a);
  EXPECT_DOUBLE_EQ(ab.Estimate(), ba.Estimate());

  // Idempotent: merging a sketch into itself changes nothing.
  HyperLogLog aa = a;
  aa.Merge(a);
  EXPECT_DOUBLE_EQ(aa.Estimate(), a.Estimate());

  // The merged sketch estimates the union (900 distinct) within the
  // documented standard error (3 sigma).
  double tol = 3.0 * ab.relative_error() * 900.0;
  EXPECT_NEAR(ab.Estimate(), 900.0, tol);

  HyperLogLog coarse(4);
  EXPECT_THROW(a.Merge(coarse), std::invalid_argument);
  EXPECT_THROW(HyperLogLog{3}, std::invalid_argument);
  EXPECT_THROW(HyperLogLog{17}, std::invalid_argument);
}

TEST(HyperLogLogTest, EstimateTracksTruthAcrossRegimes) {
  HyperLogLog empty(12);
  EXPECT_DOUBLE_EQ(empty.Estimate(), 0.0);

  // Single value: linear counting, within a hair of 1.
  HyperLogLog single(12);
  for (int i = 0; i < 100; ++i) single.Add(42);
  EXPECT_NEAR(single.Estimate(), 1.0, 0.01);

  // Large cardinality: the raw estimator regime.
  HyperLogLog big(12);
  for (int64_t k = 0; k < 50000; ++k) big.Add(k);
  EXPECT_NEAR(big.Estimate(), 50000.0,
              3.0 * big.relative_error() * 50000.0);
}

TEST(MeasuredEstimateTest, MeanIsExactlyTheCenter) {
  Distribution d = MeasuredEstimate(40.0, 0.3);
  EXPECT_EQ(d.size(), 3u);
  EXPECT_DOUBLE_EQ(d.Mean(), 40.0);
  EXPECT_DOUBLE_EQ(d.Min(), 40.0 * 0.7);
  EXPECT_DOUBLE_EQ(d.Max(), 40.0 * 1.3);

  Distribution point = MeasuredEstimate(7.0, 0.0);
  EXPECT_EQ(point.size(), 1u);
  EXPECT_DOUBLE_EQ(point.Mean(), 7.0);

  EXPECT_THROW(MeasuredEstimate(0.0, 0.5), std::invalid_argument);
  EXPECT_THROW(MeasuredEstimate(1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(MeasuredEstimate(1.0, -0.1), std::invalid_argument);
}

TEST(TableSketchTest, EmptyIngestHasNoMeasuredStatistics) {
  TableSketch empty;
  EXPECT_EQ(empty.rows(), 0u);
  EXPECT_THROW(DeriveSizeDistribution(empty), std::invalid_argument);
  TableSketch full;
  Rng rng(1);
  full.IngestTable(GenerateTable(2, 0, 0, &rng));
  EXPECT_THROW(DeriveSelectivityDistribution(empty, 0, full, 0),
               std::invalid_argument);
  EXPECT_THROW(DeriveSelectivityDistribution(full, 0, empty, 0),
               std::invalid_argument);
}

TEST(TableSketchTest, SingleValueColumnsCrossMatchAtTuplesPerPage) {
  // key_range 1 collapses both join columns to the constant 0: every
  // tuple pair matches, and the page-domain selectivity identity says the
  // measured selectivity is exactly kTuplesPerPage. The constant-key CMS
  // has no collisions to overestimate with, so the estimate is exact.
  Rng rng(2);
  TableData a = GenerateTable(2, 1, 1, &rng);
  TableData b = GenerateTable(3, 1, 1, &rng);
  TableSketch sa, sb;
  sa.IngestTable(a);
  sb.IngestTable(b);
  EXPECT_EQ(sa.rows(), 2 * kTuplesPerPage);
  EXPECT_NEAR(sa.column_distinct(0).Estimate(), 1.0, 0.01);
  EXPECT_NEAR(sa.column_distinct(1).Estimate(), 1.0, 0.01);

  Distribution sel = DeriveSelectivityDistribution(sa, 0, sb, 1);
  EXPECT_NEAR(sel.Mean(), static_cast<double>(kTuplesPerPage), 1e-9);
  // Page-domain selectivity legitimately exceeds 1 here — the deriver
  // must not clamp it.
  EXPECT_GT(sel.Min(), 1.0);
}

TEST(TableSketchTest, DerivationIsByteDeterministic) {
  Rng rng(3);
  TableData data = GenerateTable(4, 100, 0, &rng);
  TableSketch s1, s2;
  s1.IngestTable(data);
  s2.IngestTable(data);
  Distribution d1 = DeriveSizeDistribution(s1);
  Distribution d2 = DeriveSizeDistribution(s2);
  EXPECT_EQ(d1.ContentHash(), d2.ContentHash());
  EXPECT_DOUBLE_EQ(MeasuredPages(s1), MeasuredPages(s2));
  EXPECT_EQ(DeriveSelectivityDistribution(s1, 0, s2, 0).ContentHash(),
            DeriveSelectivityDistribution(s2, 0, s1, 0).ContentHash());
}

TEST(TableSketchTest, IngestChargesOneReadPerPage) {
  Rng rng(4);
  TableData data = GenerateTable(5, 50, 50, &rng);
  BufferPool pool(1);
  TableSketch sketch;
  sketch.IngestTable(data, &pool);
  EXPECT_EQ(pool.reads(), data.num_pages());
  EXPECT_EQ(sketch.rows(), data.num_tuples());
}

class MeasureTest : public ::testing::Test {
 protected:
  static Workload MakeBase(uint64_t seed) {
    Rng rng(seed);
    WorkloadOptions wopts;
    wopts.num_tables = 4;
    wopts.shape = JoinGraphShape::kChain;
    wopts.selectivity_spread = 3.0;
    wopts.table_size_spread = 2.0;
    return GenerateWorkload(wopts, &rng);
  }
};

TEST_F(MeasureTest, DerivedMomentsBracketGroundTruth) {
  Workload base = MakeBase(11);
  MeasureOptions mopts;
  mopts.max_pages = 12;
  Rng rng(99);
  MeasuredWorkload mw = MaterializeAndMeasure(base, mopts, &rng);

  uint64_t total_pages = 0;
  for (size_t t = 0; t < mw.data.size(); ++t) {
    total_pages += mw.data[t].num_pages();
    double true_pages = static_cast<double>(mw.truth[t].rows) /
                        static_cast<double>(kTuplesPerPage);
    Distribution size = mw.workload.catalog.table(static_cast<TableId>(t))
                            .SizeDistribution();
    double tol = mopts.derive.sigma *
                     mw.sketches[t].row_distinct().relative_error() *
                     true_pages +
                 1e-9;
    EXPECT_NEAR(size.Mean(), true_pages, tol) << "table " << t;
    EXPECT_GT(size.Min(), 0.0);
  }
  // Ingest charged exactly one read per materialized page.
  EXPECT_EQ(mw.io_pages, total_pages);

  const auto& preds = mw.workload.query.predicates();
  ASSERT_EQ(preds.size(), mw.true_selectivity.size());
  for (size_t i = 0; i < preds.size(); ++i) {
    double est = preds[i].selectivity.Mean();
    double truth = mw.true_selectivity[i];
    // CMS overestimates only: est >= truth, and within the one-sided CI.
    EXPECT_GE(est, truth * (1.0 - 1e-9)) << "pred " << i;
    const CountMinSketch& ca = mw.sketches[0].column(0);
    double ci = mopts.derive.sigma * ca.epsilon() *
                static_cast<double>(kTuplesPerPage);
    EXPECT_LE(est, truth + ci + 1.0) << "pred " << i;  // +floor slack
  }
}

TEST_F(MeasureTest, MeasurementIsDeterministicGivenTheRngState) {
  Workload base = MakeBase(12);
  MeasureOptions mopts;
  mopts.max_pages = 10;
  Rng rng1(7), rng2(7);
  MeasuredWorkload a = MaterializeAndMeasure(base, mopts, &rng1);
  MeasuredWorkload b = MaterializeAndMeasure(base, mopts, &rng2);
  for (size_t t = 0; t < a.data.size(); ++t) {
    EXPECT_EQ(a.workload.catalog.table(static_cast<TableId>(t))
                  .SizeDistribution()
                  .ContentHash(),
              b.workload.catalog.table(static_cast<TableId>(t))
                  .SizeDistribution()
                  .ContentHash());
  }
  const auto& pa = a.workload.query.predicates();
  const auto& pb = b.workload.query.predicates();
  for (size_t i = 0; i < pa.size(); ++i) {
    EXPECT_EQ(pa[i].selectivity.ContentHash(), pb[i].selectivity.ContentHash());
  }
}

TEST_F(MeasureTest, DriftReplacesHashesAndUpdatesTruth) {
  Workload base = MakeBase(13);
  MeasureOptions mopts;
  mopts.max_pages = 10;
  Rng rng(21);
  MeasuredWorkload mw = MaterializeAndMeasure(base, mopts, &rng);

  uint64_t old_size_hash =
      mw.workload.catalog.table(0).SizeDistribution().ContentHash();
  uint64_t untouched_hash =
      mw.workload.catalog.table(2).SizeDistribution().ContentHash();
  uint64_t old_rows = mw.truth[0].rows;
  size_t old_pages = mw.data[0].num_pages();

  DriftReport report = DriftTable(&mw, 0, 2.0, mopts, &rng);
  // Doubling the relation's data changes its measured size: the old size
  // hash is reported stale and the installed distribution is new.
  EXPECT_FALSE(report.stale_hashes.empty());
  uint64_t new_size_hash =
      mw.workload.catalog.table(0).SizeDistribution().ContentHash();
  EXPECT_NE(new_size_hash, old_size_hash);
  bool reported = false;
  for (uint64_t h : report.stale_hashes) reported |= (h == old_size_hash);
  EXPECT_TRUE(reported);
  // Ground truth tracked the drift.
  EXPECT_EQ(mw.data[0].num_pages(), 2 * old_pages);
  EXPECT_EQ(mw.truth[0].rows, 2 * old_rows);
  // Untouched relations keep their stats byte-identically.
  EXPECT_EQ(mw.workload.catalog.table(2).SizeDistribution().ContentHash(),
            untouched_hash);
}

}  // namespace
}  // namespace lec::stats
