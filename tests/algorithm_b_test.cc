#include "optimizer/algorithm_b.h"

#include <cmath>
#include <stdexcept>

#include <gtest/gtest.h>

#include "cost/expected_cost.h"
#include "optimizer/algorithm_a.h"
#include "optimizer/algorithm_c.h"
#include "optimizer/exhaustive.h"
#include "optimizer/system_r.h"
#include "query/generator.h"
#include "util/rng.h"

namespace lec {
namespace {

TEST(TopCombinationsTest, BasicTopThree) {
  std::vector<double> a = {1, 2, 3, 4};
  std::vector<double> b = {10, 20, 30};
  size_t examined = 0;
  std::vector<Combination> top = TopCombinations(a, b, 3, &examined);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_DOUBLE_EQ(top[0].cost, 11);
  EXPECT_DOUBLE_EQ(top[1].cost, 12);
  EXPECT_DOUBLE_EQ(top[2].cost, 13);
  // Frontier: k=1 allows i<=3, k=2 allows i<=1, k=3 allows i<=1 -> 5 pairs.
  EXPECT_EQ(examined, 5u);
}

TEST(TopCombinationsTest, CEqualsOneExaminesOnePair) {
  size_t examined = 0;
  std::vector<Combination> top =
      TopCombinations({5, 6}, {7, 8}, 1, &examined);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_DOUBLE_EQ(top[0].cost, 12);
  EXPECT_EQ(examined, 1u);
}

TEST(TopCombinationsTest, HandlesShortLists) {
  std::vector<Combination> top = TopCombinations({1}, {2}, 10);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_DOUBLE_EQ(top[0].cost, 3);
  EXPECT_THROW(TopCombinations({1}, {2}, 0), std::invalid_argument);
}

// Proposition 3.1 verified on random sorted lists: the frontier examines at
// most c + c·ln c pairs yet returns exactly the true top c sums.
class PropositionThreeOneTest : public ::testing::TestWithParam<size_t> {};

TEST_P(PropositionThreeOneTest, FrontierIsExactAndBounded) {
  size_t c = GetParam();
  Rng rng(c * 7 + 1);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<double> a, b;
    size_t na = static_cast<size_t>(rng.UniformInt(1, 40));
    size_t nb = static_cast<size_t>(rng.UniformInt(1, 40));
    double va = 0, vb = 0;
    for (size_t i = 0; i < na; ++i) a.push_back(va += rng.Uniform(0, 10));
    for (size_t i = 0; i < nb; ++i) b.push_back(vb += rng.Uniform(0, 10));

    size_t examined = 0;
    std::vector<Combination> top = TopCombinations(a, b, c, &examined);

    // Bound from Proposition 3.1.
    double bound = static_cast<double>(c) +
                   static_cast<double>(c) * std::log(static_cast<double>(c));
    EXPECT_LE(static_cast<double>(examined), bound + 1.0);

    // Exactness: compare against brute force over all pairs.
    std::vector<double> all;
    for (double x : a) {
      for (double y : b) all.push_back(x + y);
    }
    std::sort(all.begin(), all.end());
    size_t expect_n = std::min(c, all.size());
    ASSERT_EQ(top.size(), expect_n);
    for (size_t i = 0; i < expect_n; ++i) {
      EXPECT_DOUBLE_EQ(top[i].cost, all[i]) << "c=" << c << " i=" << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Cs, PropositionThreeOneTest,
                         ::testing::Values(1, 2, 3, 4, 6, 8, 12, 16, 24, 32,
                                           48, 64));

// Top-c DP returns exactly the c cheapest complete plans (Theorem 3.2's
// candidate generation), verified against exhaustive enumeration.
class TopCDpTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TopCDpTest, MatchesExhaustiveTopC) {
  Rng rng(GetParam());
  WorkloadOptions wopts;
  wopts.num_tables = 4;
  wopts.shape = static_cast<JoinGraphShape>(GetParam() % 5);
  wopts.order_by_probability = 0.5;
  Workload w = GenerateWorkload(wopts, &rng);
  CostModel model;
  OptimizerOptions opts;
  for (double memory : {50.0, 2000.0}) {
    for (size_t c : {1u, 2u, 4u, 8u}) {
      auto dp = TopCPlansAtMemory(w.query, w.catalog, model, memory, c,
                                  opts);
      auto oracle = ExhaustiveTopK(
          w.query, w.catalog, opts,
          [&](const PlanPtr& p) {
            return PlanCostAtMemory(p, w.query, w.catalog, model, memory);
          },
          c);
      ASSERT_EQ(dp.size(), oracle.size()) << "memory=" << memory
                                          << " c=" << c;
      size_t n = std::min(dp.size(), oracle.size());
      for (size_t i = 0; i < n; ++i) {
        EXPECT_NEAR(dp[i].second, oracle[i].second,
                    1e-9 * std::max(1.0, oracle[i].second))
            << "memory=" << memory << " c=" << c << " rank=" << i;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TopCDpTest,
                         ::testing::Range<uint64_t>(200, 212));

TEST(AlgorithmBTest, CEqualsOneMatchesAlgorithmA) {
  Rng rng(9);
  WorkloadOptions wopts;
  wopts.num_tables = 4;
  Workload w = GenerateWorkload(wopts, &rng);
  CostModel model;
  Distribution memory({{40, 0.4}, {900, 0.6}});
  OptimizeResult b1 =
      OptimizeAlgorithmB(w.query, w.catalog, model, memory, 1);
  OptimizeResult a = OptimizeAlgorithmA(w.query, w.catalog, model, memory);
  EXPECT_NEAR(b1.objective, a.objective,
              1e-9 * std::max(1.0, a.objective));
}

// Monotone improvement: larger c can only widen the candidate pool, so the
// chosen expected cost is non-increasing in c, and Algorithm C lower-bounds
// everything.
class AlgorithmBLadderTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AlgorithmBLadderTest, QualityLadderAcrossC) {
  Rng rng(GetParam());
  WorkloadOptions wopts;
  wopts.num_tables = static_cast<int>(4 + GetParam() % 2);
  wopts.shape = static_cast<JoinGraphShape>(GetParam() % 5);
  wopts.order_by_probability = 0.4;
  Workload w = GenerateWorkload(wopts, &rng);
  CostModel model;
  Distribution memory({{15, 0.2}, {120, 0.3}, {1100, 0.3}, {15000, 0.2}});
  OptimizeResult c_result =
      OptimizeLecStatic(w.query, w.catalog, model, memory);
  double prev = std::numeric_limits<double>::infinity();
  for (size_t c : {1u, 2u, 4u, 8u}) {
    OptimizeResult b =
        OptimizeAlgorithmB(w.query, w.catalog, model, memory, c);
    EXPECT_LE(b.objective, prev + 1e-9 * std::max(1.0, prev))
        << "c=" << c;
    EXPECT_LE(c_result.objective,
              b.objective + 1e-9 * std::max(1.0, b.objective));
    prev = b.objective;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AlgorithmBLadderTest,
                         ::testing::Range<uint64_t>(300, 315));

TEST(AlgorithmBTest, RejectsZeroC) {
  Catalog catalog;
  catalog.AddTable("A", 10);
  catalog.AddTable("B", 10);
  Query q;
  q.AddTable(0);
  q.AddTable(1);
  q.AddPredicate(0, 1, 0.1);
  CostModel model;
  EXPECT_THROW(
      TopCPlansAtMemory(q, catalog, model, 100, 0, {}),
      std::invalid_argument);
}

}  // namespace
}  // namespace lec
