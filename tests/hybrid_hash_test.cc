// Hybrid hash join [Sha86]: the continuous-cost extension method.
#include <gtest/gtest.h>

#include "cost/cost_model.h"
#include "cost/expected_cost.h"
#include "dist/builders.h"
#include "optimizer/algorithm_c.h"
#include "optimizer/algorithm_d.h"
#include "optimizer/exhaustive.h"
#include "optimizer/system_r.h"
#include "query/generator.h"

namespace lec {
namespace {

OptimizerOptions WithHybrid() {
  OptimizerOptions opts;
  opts.join_methods = {JoinMethod::kNestedLoop, JoinMethod::kSortMerge,
                       JoinMethod::kGraceHash, JoinMethod::kHybridHash};
  return opts;
}

TEST(HybridHashTest, FormulaEndpoints) {
  CostModel m;
  // Build side fully resident: one read of each input.
  EXPECT_DOUBLE_EQ(m.JoinCost(JoinMethod::kHybridHash, 1000, 400, 400),
                   1400);
  EXPECT_DOUBLE_EQ(m.JoinCost(JoinMethod::kHybridHash, 1000, 400, 5000),
                   1400);
  // Memory -> 0: nothing resident, degenerating to Grace's deepest regime.
  EXPECT_NEAR(m.JoinCost(JoinMethod::kHybridHash, 1000, 400, 1e-9),
              6 * 1400, 1.0);
  // Halfway residency in the top regime: 2 - 0.75 = 1.25 passes.
  EXPECT_DOUBLE_EQ(m.JoinCost(JoinMethod::kHybridHash, 1000, 400, 300),
                   1.25 * 1400);
}

TEST(HybridHashTest, CostContinuousAndMonotoneAboveSqrtF) {
  // Within the top Grace regime (M > sqrt(F) = 20) the cost is continuous
  // and Lipschitz in memory — the defining contrast with GH/SM, whose cost
  // jumps by a whole 2x(|A|+|B|) pass at the thresholds.
  CostModel m;
  double prev = std::numeric_limits<double>::infinity();
  for (double mem = 21; mem <= 500; mem += 1) {
    double c = m.JoinCost(JoinMethod::kHybridHash, 1000, 400, mem);
    EXPECT_LE(c, prev + 1e-9);
    if (prev != std::numeric_limits<double>::infinity()) {
      EXPECT_LE(prev - c, 1400.0 / 400 + 1e-9) << "jump at " << mem;
    }
    prev = c;
  }
}

TEST(HybridHashTest, DominatesGraceEverywhere) {
  CostModel m;
  for (double mem : {2.0, 10.0, 50.0, 200.0, 633.0, 5000.0}) {
    EXPECT_LE(m.JoinCost(JoinMethod::kHybridHash, 1e6, 4e5, mem),
              m.JoinCost(JoinMethod::kGraceHash, 1e6, 4e5, mem) + 1e-6)
        << "memory " << mem;
  }
}

TEST(HybridHashTest, BreakpointsIncludeResidencyKink) {
  CostModel m;
  std::vector<double> bps =
      m.MemoryBreakpoints(JoinMethod::kHybridHash, 1000, 400);
  ASSERT_EQ(bps.size(), 3u);
  EXPECT_DOUBLE_EQ(bps[0], std::cbrt(400.0));
  EXPECT_DOUBLE_EQ(bps[1], std::sqrt(400.0));
  EXPECT_DOUBLE_EQ(bps[2], 400);
}

TEST(HybridHashTest, WidenedPlanSpaceNeverHurts) {
  CostModel model;
  Distribution memory({{30, 0.3}, {300, 0.4}, {3000, 0.3}});
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    Rng rng(seed);
    WorkloadOptions wopts;
    wopts.num_tables = 4 + static_cast<int>(seed % 2);
    wopts.order_by_probability = 0.4;
    Workload w = GenerateWorkload(wopts, &rng);
    double base =
        OptimizeLecStatic(w.query, w.catalog, model, memory).objective;
    double with = OptimizeLecStatic(w.query, w.catalog, model, memory,
                                    WithHybrid())
                      .objective;
    EXPECT_LE(with, base + 1e-9 * base) << "seed " << seed;
  }
}

TEST(HybridHashTest, DpStillMatchesExhaustiveWithHybrid) {
  Rng rng(3);
  WorkloadOptions wopts;
  wopts.num_tables = 4;
  wopts.order_by_probability = 1.0;
  Workload w = GenerateWorkload(wopts, &rng);
  CostModel model;
  Distribution memory({{40, 0.5}, {800, 0.5}});
  OptimizerOptions opts = WithHybrid();
  OptimizeResult dp =
      OptimizeLecStatic(w.query, w.catalog, model, memory, opts);
  OptimizeResult oracle = ExhaustiveBest(
      w.query, w.catalog, opts, [&](const PlanPtr& p) {
        return PlanExpectedCostStatic(p, w.query, w.catalog, model, memory);
      });
  EXPECT_NEAR(dp.objective, oracle.objective, 1e-9 * oracle.objective);
}

TEST(HybridHashTest, AlgorithmDFallsBackToNaiveForHybrid) {
  Rng rng(4);
  WorkloadOptions wopts;
  wopts.num_tables = 4;
  wopts.selectivity_spread = 4.0;
  Workload w = GenerateWorkload(wopts, &rng);
  CostModel model;
  Distribution memory({{40, 0.5}, {800, 0.5}});
  OptimizerOptions opts = WithHybrid();
  opts.use_fast_ec = true;
  // Must not throw (hybrid steps take the naive path) and must agree with
  // the all-naive configuration.
  OptimizeResult fast =
      OptimizeAlgorithmD(w.query, w.catalog, model, memory, opts);
  opts.use_fast_ec = false;
  OptimizeResult naive =
      OptimizeAlgorithmD(w.query, w.catalog, model, memory, opts);
  EXPECT_NEAR(fast.objective, naive.objective, 1e-6 * naive.objective);
}

TEST(HybridHashTest, ChosenWhenMemoryComparableToBuildSide) {
  // A=1000, B=400, M=300: hybrid keeps 3/4 of the build side resident
  // (1.25 passes = 1750 I/Os) and beats GH/SM (2800) and NL (starved:
  // 401000). Both LSC and LEC land on it.
  Catalog catalog;
  catalog.AddTable("A", 1000);
  catalog.AddTable("B", 400);
  Query q;
  q.AddTable(0);
  q.AddTable(1);
  q.AddPredicate(0, 1, 1e-4);
  CostModel model;
  OptimizeResult lsc = OptimizeLsc(q, catalog, model, 300, WithHybrid());
  ASSERT_EQ(lsc.plan->kind, PlanNode::Kind::kJoin);
  EXPECT_EQ(lsc.plan->method, JoinMethod::kHybridHash);
  EXPECT_DOUBLE_EQ(lsc.objective, 1400 + 1.25 * 1400);  // scans + join
  OptimizeResult lec = OptimizeLecStatic(
      q, catalog, model, Distribution::TwoPoint(300, 0.5, 250, 0.5),
      WithHybrid());
  EXPECT_EQ(lec.plan->method, JoinMethod::kHybridHash);
}

}  // namespace
}  // namespace lec
