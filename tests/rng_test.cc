#include "util/rng.h"

#include <algorithm>
#include <stdexcept>

#include <gtest/gtest.h>

namespace lec {
namespace {

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform01(), b.Uniform01());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  bool differs = false;
  for (int i = 0; i < 10; ++i) {
    if (a.Uniform01() != b.Uniform01()) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(RngTest, UniformRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.Uniform(10, 20);
    EXPECT_GE(v, 10);
    EXPECT_LT(v, 20);
  }
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(6);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(1, 3);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 3);
    saw_lo |= v == 1;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, LogUniformBoundsAndValidation) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.LogUniform(10, 1000);
    EXPECT_GE(v, 10 * (1 - 1e-12));
    EXPECT_LE(v, 1000 * (1 + 1e-12));
  }
  EXPECT_THROW(rng.LogUniform(0, 10), std::invalid_argument);
  EXPECT_THROW(rng.LogUniform(10, 5), std::invalid_argument);
}

TEST(RngTest, SampleIndexFollowsWeights) {
  Rng rng(8);
  std::vector<double> weights = {1, 0, 3};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 20000; ++i) {
    ++counts[rng.SampleIndex(weights)];
  }
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(counts[0] / 20000.0, 0.25, 0.02);
  EXPECT_THROW(rng.SampleIndex({0, 0}), std::invalid_argument);
  EXPECT_THROW(rng.SampleIndex({-1, 2}), std::invalid_argument);
}

TEST(RngTest, ShufflePermutes) {
  Rng rng(9);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, orig);
}

TEST(RngTest, ForkIsDeterministic) {
  Rng a(10), b(10);
  Rng child_a = a.Fork();
  Rng child_b = b.Fork();
  for (int i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(child_a.Uniform01(), child_b.Uniform01());
  }
}

TEST(RngTest, ForkDivergesFromParent) {
  Rng a(10);
  Rng child = a.Fork();
  bool differs = false;
  for (int i = 0; i < 5; ++i) {
    if (a.Uniform01() != child.Uniform01()) differs = true;
  }
  EXPECT_TRUE(differs);
}

}  // namespace
}  // namespace lec
