#include "optimizer/system_r.h"

#include <gtest/gtest.h>

#include "cost/expected_cost.h"
#include "optimizer/exhaustive.h"
#include "plan/printer.h"
#include "query/generator.h"

namespace lec {
namespace {

// Theorem 2.1: "The System R optimizer computes the LSC left-deep plan for
// a specific setting of the parameters." Verified against the exhaustive
// oracle across seeded random workloads, shapes, and memory values.
struct Tc {
  uint64_t seed;
  JoinGraphShape shape;
  int tables;
};

class SystemRTheoremTest : public ::testing::TestWithParam<Tc> {};

TEST_P(SystemRTheoremTest, MatchesExhaustiveLsc) {
  Tc tc = GetParam();
  Rng rng(tc.seed);
  WorkloadOptions wopts;
  wopts.num_tables = tc.tables;
  wopts.shape = tc.shape;
  wopts.order_by_probability = 0.5;
  Workload w = GenerateWorkload(wopts, &rng);
  CostModel model;
  OptimizerOptions opts;
  for (double memory : {20.0, 500.0, 5000.0}) {
    OptimizeResult dp = OptimizeLsc(w.query, w.catalog, model, memory, opts);
    OptimizeResult oracle = ExhaustiveBest(
        w.query, w.catalog, opts, [&](const PlanPtr& p) {
          return PlanCostAtMemory(p, w.query, w.catalog, model, memory);
        });
    EXPECT_NEAR(dp.objective, oracle.objective,
                1e-9 * std::max(1.0, oracle.objective))
        << "memory=" << memory << " query="
        << PlanToString(dp.plan, w.query, w.catalog);
    // The DP's claimed objective equals the plan's independently computed
    // cost.
    EXPECT_NEAR(dp.objective,
                PlanCostAtMemory(dp.plan, w.query, w.catalog, model, memory),
                1e-9 * std::max(1.0, dp.objective));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, SystemRTheoremTest,
    ::testing::Values(Tc{1, JoinGraphShape::kChain, 4},
                      Tc{2, JoinGraphShape::kChain, 5},
                      Tc{3, JoinGraphShape::kStar, 4},
                      Tc{4, JoinGraphShape::kStar, 5},
                      Tc{5, JoinGraphShape::kCycle, 4},
                      Tc{6, JoinGraphShape::kClique, 4},
                      Tc{7, JoinGraphShape::kRandom, 5},
                      Tc{8, JoinGraphShape::kChain, 3},
                      Tc{9, JoinGraphShape::kClique, 5},
                      Tc{10, JoinGraphShape::kRandom, 4}));

TEST(SystemRTest, TwoTableJoinPicksCheapestMethod) {
  Catalog catalog;
  catalog.AddTable("A", 1000);
  catalog.AddTable("B", 50);
  Query q;
  q.AddTable(0);
  q.AddTable(1);
  q.AddPredicate(0, 1, 0.001);
  CostModel model;
  // Plenty of memory: NL with inner in memory costs |A|+|B| at the join,
  // beating SM/GH multiples.
  OptimizeResult r = OptimizeLsc(q, catalog, model, 500);
  ASSERT_EQ(r.plan->kind, PlanNode::Kind::kJoin);
  EXPECT_EQ(r.plan->method, JoinMethod::kNestedLoop);
  // join (1050) + scans (1050).
  EXPECT_DOUBLE_EQ(r.objective, 2 * 1050);
}

TEST(SystemRTest, OrderByMakesSortMergeWin) {
  // Example 1.1 structure: with ORDER BY on the join key and high memory,
  // SM avoids the final sort.
  Catalog catalog;
  catalog.AddTable("A", 1'000'000);
  catalog.AddTable("B", 400'000);
  Query q;
  q.AddTable(0);
  q.AddTable(1);
  q.AddPredicate(0, 1, 3000.0 / (1e6 * 4e5));
  q.RequireOrder(0);
  CostModel model;
  OptimizeResult r = OptimizeLsc(q, catalog, model, 2000);
  ASSERT_EQ(r.plan->kind, PlanNode::Kind::kJoin);
  EXPECT_EQ(r.plan->method, JoinMethod::kSortMerge);
  EXPECT_EQ(r.plan->order, 0);
}

TEST(SystemRTest, LowMemoryFlipsToHashPlusSort) {
  // Example 1.1 at 700 pages: SM needs 4 passes but GH only 2, so GH + sort
  // wins even with the ORDER BY.
  Catalog catalog;
  catalog.AddTable("A", 1'000'000);
  catalog.AddTable("B", 400'000);
  Query q;
  q.AddTable(0);
  q.AddTable(1);
  q.AddPredicate(0, 1, 3000.0 / (1e6 * 4e5));
  q.RequireOrder(0);
  CostModel model;
  OptimizeResult r = OptimizeLsc(q, catalog, model, 700);
  ASSERT_EQ(r.plan->kind, PlanNode::Kind::kSort);
  EXPECT_EQ(r.plan->left->method, JoinMethod::kGraceHash);
}

TEST(SystemRTest, PointEstimateSelection) {
  Catalog catalog;
  catalog.AddTable("A", 1'000'000);
  catalog.AddTable("B", 400'000);
  Query q;
  q.AddTable(0);
  q.AddTable(1);
  q.AddPredicate(0, 1, 3000.0 / (1e6 * 4e5));
  q.RequireOrder(0);
  CostModel model;
  Distribution memory = Distribution::TwoPoint(2000, 0.8, 700, 0.2);
  // Mode = 2000 and mean = 1740 both exceed sqrt(1e6): LSC picks Plan 1
  // (sort-merge) either way — the paper's setup.
  for (PointEstimate est : {PointEstimate::kMean, PointEstimate::kMode}) {
    OptimizeResult r =
        OptimizeLscAtEstimate(q, catalog, model, memory, est);
    ASSERT_EQ(r.plan->kind, PlanNode::Kind::kJoin);
    EXPECT_EQ(r.plan->method, JoinMethod::kSortMerge);
  }
}

TEST(SystemRTest, RestrictedJoinMethods) {
  Catalog catalog;
  catalog.AddTable("A", 1000);
  catalog.AddTable("B", 50);
  Query q;
  q.AddTable(0);
  q.AddTable(1);
  q.AddPredicate(0, 1, 0.001);
  CostModel model;
  OptimizerOptions opts;
  opts.join_methods = {JoinMethod::kSortMerge};
  OptimizeResult r = OptimizeLsc(q, catalog, model, 500, opts);
  EXPECT_EQ(r.plan->method, JoinMethod::kSortMerge);
}

TEST(SystemRTest, CrossProductForbiddenForConnectedQuery) {
  // Chain query: subsets {0,2} are unreachable without a cross product, but
  // a plan must still be found via connected enumeration.
  Catalog catalog;
  catalog.AddTable("A", 100);
  catalog.AddTable("B", 100);
  catalog.AddTable("C", 100);
  Query q;
  q.AddTable(0);
  q.AddTable(1);
  q.AddTable(2);
  q.AddPredicate(0, 1, 0.01);
  q.AddPredicate(1, 2, 0.01);
  CostModel model;
  OptimizeResult r = OptimizeLsc(q, catalog, model, 1000);
  EXPECT_TRUE(r.plan != nullptr);
  // Join order must be chain-contiguous: the middle table can't come last
  // ... actually it can come first; just verify no cross join nodes.
  std::vector<QueryPos> order = JoinOrder(r.plan);
  EXPECT_EQ(order.size(), 3u);
}

TEST(SystemRTest, DisconnectedQueryAllowsCrossProducts) {
  Catalog catalog;
  catalog.AddTable("A", 10);
  catalog.AddTable("B", 10);
  Query q;
  q.AddTable(0);
  q.AddTable(1);
  // No predicates at all: pure cross product.
  CostModel model;
  OptimizeResult r = OptimizeLsc(q, catalog, model, 100);
  ASSERT_TRUE(r.plan != nullptr);
  EXPECT_EQ(r.plan->kind, PlanNode::Kind::kJoin);
  EXPECT_TRUE(r.plan->predicates.empty());
  // SM is excluded for cross products; NL/GH remain.
  EXPECT_NE(r.plan->method, JoinMethod::kSortMerge);
}

TEST(SystemRTest, SingleTableQuery) {
  Catalog catalog;
  catalog.AddTable("A", 123);
  Query q;
  q.AddTable(0);
  CostModel model;
  OptimizeResult r = OptimizeLsc(q, catalog, model, 100);
  EXPECT_EQ(r.plan->kind, PlanNode::Kind::kAccess);
  EXPECT_DOUBLE_EQ(r.objective, 123);
}

TEST(SystemRTest, CandidateCountGrowsWithQuerySize) {
  CostModel model;
  size_t prev = 0;
  for (int n : {3, 4, 5, 6}) {
    Rng rng(100 + static_cast<uint64_t>(n));
    WorkloadOptions wopts;
    wopts.num_tables = n;
    wopts.shape = JoinGraphShape::kClique;
    Workload w = GenerateWorkload(wopts, &rng);
    OptimizeResult r = OptimizeLsc(w.query, w.catalog, model, 1000);
    EXPECT_GT(r.candidates_considered, prev);
    prev = r.candidates_considered;
  }
}

}  // namespace
}  // namespace lec
