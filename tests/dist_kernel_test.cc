// The SoA kernels (dist/kernel.h) against their Distribution mirrors.
//
// The kernels promise bit-faithfulness: same sort, same merge order, same
// normalization as the Distribution constructor pipeline. These tests pin
// that promise on the edge cases the fuzz corpus rarely concentrates on —
// single buckets, point masses, rebucket budgets at both extremes, denormal
// probabilities — plus the exact-classification contract of the fast-EC
// step thresholds.
#include "dist/kernel.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "cost/fast_expected_cost.h"
#include "cost/size_propagation.h"
#include "dist/arena.h"
#include "dist/builders.h"
#include "dist/simd.h"
#include "util/rng.h"

namespace lec {
namespace {

std::vector<Bucket> RandomRawBuckets(Rng* rng, size_t n,
                                     bool with_duplicates) {
  std::vector<Bucket> out;
  for (size_t i = 0; i < n; ++i) {
    double v = rng->LogUniform(1, 1e6);
    if (with_duplicates && i > 0 && rng->Uniform01() < 0.3) {
      v = out[i - 1].value;  // exercise the merge path
    }
    out.push_back({v, rng->Uniform(0.0, 1.0)});  // zero-mass possible
  }
  return out;
}

void ExpectViewEqualsDistribution(DistView v, const Distribution& d) {
  ASSERT_EQ(v.n, d.size());
  for (size_t i = 0; i < v.n; ++i) {
    EXPECT_EQ(v.values[i], d.bucket(i).value) << "value " << i;
    EXPECT_EQ(v.probs[i], d.bucket(i).prob) << "prob " << i;
  }
}

TEST(DistKernelTest, FinishIntoMirrorsConstructorBitForBit) {
  DistArena arena;
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng(seed);
    std::vector<Bucket> raw = RandomRawBuckets(&rng, 12, true);
    // The constructor path first (it consumes a copy)...
    Distribution d(raw);
    // ...then the kernel on the same raw sequence.
    arena.Reset();
    Bucket* scratch = arena.AllocArray<Bucket>(raw.size());
    for (size_t i = 0; i < raw.size(); ++i) scratch[i] = raw[i];
    DistView v = FinishInto(scratch, raw.size(), &arena);
    ExpectViewEqualsDistribution(v, d);
    EXPECT_EQ(ViewContentHash(v), d.ContentHash());
  }
}

TEST(DistKernelTest, ProductIntoMirrorsProductWith) {
  DistArena arena;
  auto mul = [](double a, double b) { return a * b; };
  Rng rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    Distribution a(RandomRawBuckets(&rng, 1 + trial % 5, false));
    Distribution b(RandomRawBuckets(&rng, 1 + (trial * 3) % 7, false));
    Distribution want = a.ProductWith(b, mul);
    arena.Reset();
    DistView got = ProductInto(a.AsView(), b.AsView(), &arena);
    ExpectViewEqualsDistribution(got, want);
  }
}

TEST(DistKernelTest, PointMassKernels) {
  DistArena arena;
  Distribution point = Distribution::PointMass(42.0);
  DistView pv = point.AsView();
  // Product with a point mass scales the support.
  Distribution other = Distribution::TwoPoint(2, 0.5, 3, 0.5);
  DistView got = ProductInto(pv, other.AsView(), &arena);
  ExpectViewEqualsDistribution(
      got, point.ProductWith(other, [](double a, double b) { return a * b; }));
  // Moments.
  EXPECT_EQ(ViewMean(pv), 42.0);
  EXPECT_EQ(ViewTotalMass(pv), 1.0);
  // Rebucket of a single bucket is the identity view.
  DistView rb = RebucketInto(pv, 4, RebucketStrategy::kEqualWidth, &arena);
  EXPECT_EQ(rb.values, pv.values);  // returned unchanged, not copied
}

TEST(DistKernelTest, MixIntoMirrorsMixWith) {
  DistArena arena;
  Rng rng(11);
  Distribution a(RandomRawBuckets(&rng, 6, false));
  Distribution b(RandomRawBuckets(&rng, 4, false));
  for (double w : {0.0, 0.25, 0.5, 1.0}) {
    Distribution want = a.MixWith(b, w);
    arena.Reset();
    DistView got = MixInto(a.AsView(), b.AsView(), w, &arena);
    ExpectViewEqualsDistribution(got, want);
  }
}

TEST(DistKernelTest, MapIntoMergesCollidingImages) {
  DistArena arena;
  Distribution d = UniformBuckets(0, 10, 8);
  auto f = [](double v) { return std::floor(v / 4.0); };  // forces collisions
  Distribution want = d.Map(f);
  DistView got = MapInto(d.AsView(), f, &arena);
  ExpectViewEqualsDistribution(got, want);
}

TEST(DistKernelTest, RebucketIntoMirrorsRebucketAcrossBudgets) {
  DistArena arena;
  Rng rng(23);
  Distribution d(RandomRawBuckets(&rng, 40, false));
  for (RebucketStrategy strategy :
       {RebucketStrategy::kEqualWidth, RebucketStrategy::kEqualProb}) {
    // Budgets at both extremes: collapse-to-one, one-under, exact fit.
    for (size_t budget : {size_t{1}, size_t{3}, d.size() - 1, d.size()}) {
      Distribution want = d.Rebucket(budget, strategy);
      arena.Reset();
      DistView got = RebucketInto(d.AsView(), budget, strategy, &arena);
      ExpectViewEqualsDistribution(got, want);
      if (budget >= d.size()) {
        EXPECT_EQ(got.values, d.AsView().values);  // identity, no copy
      }
    }
  }
}

TEST(DistKernelTest, DenormalProbabilitiesFollowTheDustPass) {
  // Probabilities below the constructor's 1e-12 relative-dust threshold —
  // including actual denormals — are dropped identically by both paths.
  DistArena arena;
  std::vector<Bucket> raw = {{1.0, 1.0},
                             {2.0, 1e-13},
                             {3.0, 5e-324},  // smallest positive denormal
                             {4.0, 0.5}};
  Distribution d(raw);
  Bucket* scratch = arena.AllocArray<Bucket>(raw.size());
  for (size_t i = 0; i < raw.size(); ++i) scratch[i] = raw[i];
  DistView v = FinishInto(scratch, raw.size(), &arena);
  ExpectViewEqualsDistribution(v, d);
  EXPECT_EQ(v.n, 2u);  // only the two carrying real mass survive
}

TEST(DistKernelTest, CopyIntoAndEqualsAndHash) {
  DistArena arena;
  Distribution d = UniformBuckets(1, 100, 12);
  DistView copy = CopyInto(d.AsView(), &arena);
  EXPECT_NE(copy.values, d.AsView().values);
  EXPECT_TRUE(ViewEquals(copy, d.AsView()));
  EXPECT_EQ(ViewContentHash(copy), d.ContentHash());
  DistView other = CopyInto(Distribution::PointMass(1).AsView(), &arena);
  EXPECT_FALSE(ViewEquals(copy, other));
}

TEST(DistKernelTest, FromNormalizedViewRoundTrips) {
  DistArena arena;
  Rng rng(31);
  Distribution d(RandomRawBuckets(&rng, 15, true));
  Distribution back = Distribution::FromNormalizedView(d.AsView());
  EXPECT_TRUE(back == d);
  EXPECT_EQ(back.ContentHash(), d.ContentHash());
  EXPECT_EQ(back.Mean(), d.Mean());
  // And from an arena-built view.
  DistView prod = ProductInto(d.AsView(), d.AsView(), &arena);
  Distribution materialized = Distribution::FromNormalizedView(prod);
  ExpectViewEqualsDistribution(prod, materialized);
  EXPECT_THROW(Distribution::FromNormalizedView(DistView{}),
               std::invalid_argument);
}

TEST(DistKernelTest, JoinSizeViewMirrorsJoinSizeDistribution) {
  DistArena arena;
  Rng rng(41);
  Distribution l(RandomRawBuckets(&rng, 9, false));
  Distribution r(RandomRawBuckets(&rng, 7, false));
  Distribution s = UniformBuckets(0.01, 0.2, 5);
  for (SizePropagationMode mode : {SizePropagationMode::kCubeRootPrebucket,
                                   SizePropagationMode::kExactThenRebucket}) {
    Distribution want = JoinSizeDistribution(l, r, s, 27, mode);
    arena.Reset();
    DistView got = JoinSizeViewInto(l.AsView(), r.AsView(), s.AsView(), 27,
                                    mode, &arena);
    ExpectViewEqualsDistribution(got, want);
  }
}

// ---------------------------------------------------------------------------
// Step thresholds: the one place the kernel path deviates structurally from
// the legacy cursors. The contract is *exact classification*: for every
// swept x, "x >= StepThreshold(m, f, guess)" must equal "m <= fl(f(x))".
// ---------------------------------------------------------------------------

TEST(DistKernelTest, StepThresholdClassifiesExactly) {
  auto sqrt_fn = +[](double x) { return std::sqrt(x); };
  auto cbrt_fn = +[](double x) { return std::cbrt(x); };
  Rng rng(51);
  for (int trial = 0; trial < 2000; ++trial) {
    double m = rng.LogUniform(1e-3, 1e6);
    double t2 = StepThreshold(m, sqrt_fn, m * m);
    // At the threshold the predicate holds; one ulp below it must not.
    EXPECT_GE(std::sqrt(t2), m);
    EXPECT_LT(std::sqrt(std::nextafter(t2, 0.0)), m);
    double t3 = StepThreshold(m, cbrt_fn, m * m * m);
    EXPECT_GE(std::cbrt(t3), m);
    EXPECT_LT(std::cbrt(std::nextafter(t3, 0.0)), m);
  }
  // Values sitting exactly on a breakpoint (the Example 1.1 shape).
  EXPECT_EQ(StepThreshold(100.0, sqrt_fn, 1e4), 1e4);
  // Non-positive m: every x qualifies.
  EXPECT_EQ(StepThreshold(0.0, sqrt_fn, 0.0),
            -std::numeric_limits<double>::infinity());
}

TEST(DistKernelTest, FastEcKernelsBitMatchLegacyCursors) {
  DistArena arena;
  Rng rng(61);
  for (int trial = 0; trial < 25; ++trial) {
    Distribution a(RandomRawBuckets(&rng, 1 + trial % 12, false));
    Distribution b(RandomRawBuckets(&rng, 1 + (trial * 5) % 12, false));
    std::vector<Bucket> mb;
    size_t mn = 1 + static_cast<size_t>(rng.UniformInt(0, 7));
    for (size_t i = 0; i < mn; ++i) {
      mb.push_back({rng.LogUniform(2, 5000), rng.Uniform(0.05, 1.0)});
    }
    Distribution m(std::move(mb));
    arena.Reset();
    EcMemoryProfile profile = BuildEcMemoryProfile(m.AsView(), &arena);
    for (JoinMethod method : kAllJoinMethods) {
      double kernel =
          FastEcJoin(method, a.AsView(), b.AsView(), profile);
      double cursor = legacy::FastExpectedJoinCost(method, a, b, m);
      EXPECT_DOUBLE_EQ(kernel, cursor)
          << ToString(method) << " trial=" << trial;
    }
  }
}

// ---------------------------------------------------------------------------
// simd:: dispatch layer — every level the host supports against the scalar
// twin, per the floating-point contract in dist/simd.h: bit-exact kernels
// must match bitwise at any level; reassociating kernels within n·eps.
// Sizes straddle the vector widths (2 for SSE2, 4 for AVX2) so remainder
// loops and the full-width body are both exercised.
// ---------------------------------------------------------------------------

std::vector<simd::Level> SupportedLevels() {
  std::vector<simd::Level> out = {simd::Level::kScalar};
  if (simd::HighestSupported() >= simd::Level::kSse2) {
    out.push_back(simd::Level::kSse2);
  }
  if (simd::HighestSupported() >= simd::Level::kAvx2) {
    out.push_back(simd::Level::kAvx2);
  }
  return out;
}

constexpr size_t kSimdSizes[] = {0, 1, 2, 3, 4, 5, 7, 8, 9, 17};

TEST(SimdParityTest, BitExactKernelsIdenticalAcrossLevels) {
  Rng rng(71);
  for (size_t n : kSimdSizes) {
    std::vector<double> bv(n), bp(n), interleaved(2 * n);
    for (size_t i = 0; i < n; ++i) {
      bv[i] = rng.LogUniform(1e-3, 1e6);
      bp[i] = rng.Uniform(0.0, 1.0);
      interleaved[2 * i] = bv[i];
      interleaved[2 * i + 1] = bp[i];
    }
    std::vector<double> scale_ref(n), cross_ref(2 * n);
    std::vector<double> div_ref = interleaved;
    size_t leq_ref = 0, leq_strict_ref = 0;
    {
      simd::ScopedLevel pin(simd::Level::kScalar);
      simd::Scale(bv.data(), 0.37, scale_ref.data(), n);
      simd::CrossInto(3.5, 0.25, bv.data(), bp.data(), n, cross_ref.data());
      simd::DivStride2(div_ref.data(), n, 1.7);
      leq_ref = simd::CountLeq(bv.data(), 0, n, 1000.0, false);
      leq_strict_ref = simd::CountLeq(bv.data(), 0, n, 1000.0, true);
    }
    for (simd::Level level : SupportedLevels()) {
      simd::ScopedLevel pin(level);
      std::vector<double> scale_got(n), cross_got(2 * n);
      std::vector<double> div_got = interleaved;
      simd::Scale(bv.data(), 0.37, scale_got.data(), n);
      simd::CrossInto(3.5, 0.25, bv.data(), bp.data(), n, cross_got.data());
      simd::DivStride2(div_got.data(), n, 1.7);
      EXPECT_EQ(scale_got, scale_ref) << simd::LevelName(level) << " n=" << n;
      EXPECT_EQ(cross_got, cross_ref) << simd::LevelName(level) << " n=" << n;
      EXPECT_EQ(div_got, div_ref) << simd::LevelName(level) << " n=" << n;
      EXPECT_EQ(simd::CountLeq(bv.data(), 0, n, 1000.0, false), leq_ref);
      EXPECT_EQ(simd::CountLeq(bv.data(), 0, n, 1000.0, true), leq_strict_ref);
    }
  }
}

TEST(SimdParityTest, ReassociatingKernelsWithinRelativeTolerance) {
  Rng rng(73);
  for (size_t n : kSimdSizes) {
    std::vector<double> x(n), y(n), interleaved(2 * n);
    for (size_t i = 0; i < n; ++i) {
      x[i] = rng.LogUniform(1e-3, 1e6);
      y[i] = rng.Uniform(0.0, 1.0);
      interleaved[2 * i] = x[i];
      interleaved[2 * i + 1] = y[i];
    }
    double sum_ref = 0, dot_ref = 0, sf_ref = 0, df_ref = 0, s2_ref = 0,
           hf_ref = 0;
    {
      simd::ScopedLevel pin(simd::Level::kScalar);
      sum_ref = simd::Sum(x.data(), n);
      dot_ref = simd::Dot(x.data(), y.data(), n);
      sf_ref = simd::SumFrom(0.125, x.data(), n);
      df_ref = simd::DotFrom(0.125, x.data(), y.data(), n);
      s2_ref = simd::SumStride2(interleaved.data(), n);
      hf_ref = simd::HybridFactorDot(x.data(), y.data(), n, 50.0,
                                     std::cbrt(8000.0), std::sqrt(8000.0));
    }
    for (simd::Level level : SupportedLevels()) {
      simd::ScopedLevel pin(level);
      auto near = [&](double got, double want, const char* what) {
        EXPECT_NEAR(got, want, std::abs(want) * 1e-12 + 1e-300)
            << what << " " << simd::LevelName(level) << " n=" << n;
      };
      near(simd::Sum(x.data(), n), sum_ref, "Sum");
      near(simd::Dot(x.data(), y.data(), n), dot_ref, "Dot");
      near(simd::SumFrom(0.125, x.data(), n), sf_ref, "SumFrom");
      near(simd::DotFrom(0.125, x.data(), y.data(), n), df_ref, "DotFrom");
      near(simd::SumStride2(interleaved.data(), n), s2_ref, "SumStride2");
      near(simd::HybridFactorDot(x.data(), y.data(), n, 50.0,
                                 std::cbrt(8000.0), std::sqrt(8000.0)),
           hf_ref, "HybridFactorDot");
    }
  }
}

TEST(SimdParityTest, SumFromDotFromScalarSeedingContract) {
  // The reason SumFrom/DotFrom exist at all: the scalar twin must fold the
  // elements onto the seed ONE BY ONE — bit-identical to the historical
  // running-accumulator loop — not compute init + Sum(x). The two
  // parenthesizations differ in the low bits, and that difference once
  // flipped a kernel-vs-legacy near-tie in Algorithm D (fuzz I7).
  simd::ScopedLevel pin(simd::Level::kScalar);
  Rng rng(79);
  for (int trial = 0; trial < 200; ++trial) {
    size_t n = 1 + static_cast<size_t>(rng.UniformInt(0, 11));
    double init = rng.LogUniform(1e-3, 1e6);
    std::vector<double> x(n), y(n);
    for (size_t i = 0; i < n; ++i) {
      x[i] = rng.LogUniform(1e-6, 1e6);
      y[i] = rng.Uniform(0.0, 1.0);
    }
    double acc = init;
    for (size_t i = 0; i < n; ++i) acc += x[i];
    EXPECT_EQ(simd::SumFrom(init, x.data(), n), acc) << "trial " << trial;
    double pe = init;
    for (size_t i = 0; i < n; ++i) pe += x[i] * y[i];
    EXPECT_EQ(simd::DotFrom(init, x.data(), y.data(), n), pe)
        << "trial " << trial;
  }
}

TEST(SimdParityTest, ScopedLevelRestoresPreviousLevel) {
  simd::Level before = simd::ActiveLevel();
  {
    simd::ScopedLevel pin(simd::Level::kScalar);
    EXPECT_EQ(simd::ActiveLevel(), simd::Level::kScalar);
    {
      // Nested overrides clamp to what the CPU supports and unwind in
      // LIFO order.
      simd::ScopedLevel inner(simd::Level::kAvx2);
      EXPECT_LE(simd::ActiveLevel(), simd::HighestSupported());
    }
    EXPECT_EQ(simd::ActiveLevel(), simd::Level::kScalar);
  }
  EXPECT_EQ(simd::ActiveLevel(), before);
}

TEST(DistKernelTest, FastEcKernelsExactAtBreakpointMemories) {
  // Memory buckets sitting exactly at the cost formulas' discontinuities —
  // the adversarial case for the precomputed thresholds.
  DistArena arena;
  Distribution a = Distribution::PointMass(10000);
  Distribution b = Distribution::PointMass(100);
  Distribution m({{std::cbrt(10000.0), 0.25},
                  {100, 0.25},
                  {102, 0.25},
                  {103, 0.25}});
  EcMemoryProfile profile = BuildEcMemoryProfile(m.AsView(), &arena);
  for (JoinMethod method : kAllJoinMethods) {
    EXPECT_DOUBLE_EQ(FastEcJoin(method, a.AsView(), b.AsView(), profile),
                     legacy::FastExpectedJoinCost(method, a, b, m))
        << ToString(method);
  }
}

}  // namespace
}  // namespace lec
