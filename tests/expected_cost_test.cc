#include "cost/expected_cost.h"

#include <gtest/gtest.h>

#include "dist/builders.h"

namespace lec {
namespace {

// A two-table setup mirroring Example 1.1.
struct Example11 {
  Catalog catalog;
  Query query;
  CostModel model;
  Distribution memory = Distribution::TwoPoint(2000, 0.8, 700, 0.2);
  // selectivity chosen so the result is 3000 pages: 3000 / (1e6 * 4e5).
  double selectivity = 3000.0 / (1e6 * 4e5);

  Example11() {
    catalog.AddTable("A", 1'000'000);
    catalog.AddTable("B", 400'000);
    query.AddTable(0);
    query.AddTable(1);
    query.AddPredicate(0, 1, selectivity);
    query.RequireOrder(0);
  }

  PlanPtr Plan1() const {  // sort-merge; output already ordered
    return MakeJoin(MakeAccess(0, 1e6), MakeAccess(1, 4e5),
                    JoinMethod::kSortMerge, {0}, /*order=*/0, 3000);
  }
  PlanPtr Plan2() const {  // Grace hash then sort
    PlanPtr join = MakeJoin(MakeAccess(0, 1e6), MakeAccess(1, 4e5),
                            JoinMethod::kGraceHash, {0}, kUnsorted, 3000);
    return MakeSort(join, 0);
  }
};

TEST(ExpectedCostTest, FixedSizesMatchesManualMix) {
  CostModel model;
  Distribution memory = Distribution::TwoPoint(2000, 0.8, 700, 0.2);
  double ec = ExpectedJoinCostFixedSizes(model, JoinMethod::kSortMerge, 1e6,
                                         4e5, memory);
  // 80%: 2 passes (2x), 20%: below sqrt(1e6)=1000 -> 4x.
  EXPECT_DOUBLE_EQ(ec, 0.8 * 2 * 1.4e6 + 0.2 * 4 * 1.4e6);
}

TEST(ExpectedCostTest, PointMassMemoryReducesToSpecificCost) {
  CostModel model;
  Distribution memory = Distribution::PointMass(500);
  for (JoinMethod m : kAllJoinMethods) {
    EXPECT_DOUBLE_EQ(
        ExpectedJoinCostFixedSizes(model, m, 1000, 2000, memory),
        model.JoinCost(m, 1000, 2000, 500));
  }
}

TEST(ExpectedCostTest, DistributedSizesTripleEnumeration) {
  CostModel model;
  Distribution left = Distribution::TwoPoint(100, 0.5, 1000, 0.5);
  Distribution right = Distribution::PointMass(500);
  Distribution memory = Distribution::TwoPoint(30, 0.5, 40, 0.5);
  double ec =
      ExpectedJoinCost(model, JoinMethod::kSortMerge, left, right, memory);
  double manual = 0;
  for (double l : {100.0, 1000.0}) {
    for (double m : {30.0, 40.0}) {
      manual +=
          0.25 * model.JoinCost(JoinMethod::kSortMerge, l, 500, m);
    }
  }
  EXPECT_DOUBLE_EQ(ec, manual);
}

TEST(ExpectedCostTest, SortCostExpectation) {
  CostModel model;
  Distribution memory = Distribution::TwoPoint(2000, 0.8, 700, 0.2);
  // Both memory values give 12000 for 3000 pages (one merge pass).
  EXPECT_DOUBLE_EQ(ExpectedSortCostFixedSize(model, 3000, memory), 12000);
  Distribution pages = Distribution::TwoPoint(1000, 0.5, 3000, 0.5);
  // 1000 pages fit in 2000 (cost 0) but not in 700.
  double expected = 0.5 * (0.8 * 0 + 0.2 * model.SortCost(1000, 700)) +
                    0.5 * 12000;
  EXPECT_DOUBLE_EQ(ExpectedSortCost(model, pages, memory), expected);
}

TEST(ExpectedCostTest, RealizationAtMeans) {
  Example11 ex;
  Realization r = Realization::AtMeans(ex.query, ex.catalog, 1500);
  ASSERT_EQ(r.table_pages.size(), 2u);
  EXPECT_DOUBLE_EQ(r.table_pages[0], 1e6);
  EXPECT_DOUBLE_EQ(r.selectivity[0], ex.selectivity);
  EXPECT_DOUBLE_EQ(r.memory_by_phase[0], 1500);
}

TEST(ExpectedCostTest, RealizedPlanCostExample11Plan1) {
  Example11 ex;
  Realization r = Realization::AtMeans(ex.query, ex.catalog, 2000);
  // scans (1e6 + 4e5) + SM join 2*(1.4e6); no final sort (already ordered).
  EXPECT_DOUBLE_EQ(RealizedPlanCost(ex.Plan1(), ex.query, ex.model, r),
                   1.4e6 + 2 * 1.4e6);
  r.memory_by_phase[0] = 700;
  EXPECT_DOUBLE_EQ(RealizedPlanCost(ex.Plan1(), ex.query, ex.model, r),
                   1.4e6 + 4 * 1.4e6);
}

TEST(ExpectedCostTest, RealizedPlanCostExample11Plan2) {
  Example11 ex;
  Realization r = Realization::AtMeans(ex.query, ex.catalog, 2000);
  // scans + GH join 2x + sort of the 3000-page result.
  EXPECT_DOUBLE_EQ(RealizedPlanCost(ex.Plan2(), ex.query, ex.model, r),
                   1.4e6 + 2 * 1.4e6 + 12000);
  r.memory_by_phase[0] = 700;  // still above sqrt(400000) ~ 632.5
  EXPECT_DOUBLE_EQ(RealizedPlanCost(ex.Plan2(), ex.query, ex.model, r),
                   1.4e6 + 2 * 1.4e6 + 12000);
}

TEST(ExpectedCostTest, StaticExpectedCostIsMixtureOfRealized) {
  Example11 ex;
  double ec1 = PlanExpectedCostStatic(ex.Plan1(), ex.query, ex.catalog,
                                      ex.model, ex.memory);
  EXPECT_DOUBLE_EQ(ec1, 1.4e6 + (0.8 * 2 + 0.2 * 4) * 1.4e6);
  double ec2 = PlanExpectedCostStatic(ex.Plan2(), ex.query, ex.catalog,
                                      ex.model, ex.memory);
  EXPECT_DOUBLE_EQ(ec2, 1.4e6 + 2 * 1.4e6 + 12000);
  // The paper's punchline: Plan 2 is cheaper in expectation...
  EXPECT_LT(ec2, ec1);
  // ...but Plan 1 is cheaper at the mode and at the mean.
  EXPECT_LT(PlanCostAtMemory(ex.Plan1(), ex.query, ex.catalog, ex.model,
                             2000),
            PlanCostAtMemory(ex.Plan2(), ex.query, ex.catalog, ex.model,
                             2000));
  EXPECT_LT(PlanCostAtMemory(ex.Plan1(), ex.query, ex.catalog, ex.model,
                             1740),
            PlanCostAtMemory(ex.Plan2(), ex.query, ex.catalog, ex.model,
                             1740));
}

TEST(ExpectedCostTest, DynamicWithStaticChainEqualsStatic) {
  Example11 ex;
  std::vector<double> states = {700, 2000};
  MarkovChain chain = MarkovChain::Static(states);
  for (const PlanPtr& plan : {ex.Plan1(), ex.Plan2()}) {
    EXPECT_NEAR(PlanExpectedCostDynamic(plan, ex.query, ex.catalog, ex.model,
                                        chain, ex.memory),
                PlanExpectedCostStatic(plan, ex.query, ex.catalog, ex.model,
                                       ex.memory),
                1e-6);
  }
}

TEST(ExpectedCostTest, DynamicUsesPerPhaseMarginals) {
  // Three-table chain; memory starts high and always collapses to low after
  // the first phase. Phase 0 joins should be costed at the high memory,
  // phase 1 at the low memory.
  Catalog catalog;
  catalog.AddTable("A", 10000);
  catalog.AddTable("B", 10000);
  catalog.AddTable("C", 10000);
  Query q;
  q.AddTable(0);
  q.AddTable(1);
  q.AddTable(2);
  q.AddPredicate(0, 1, 1e-4);  // AB result: 10000 pages
  q.AddPredicate(1, 2, 1e-4);
  CostModel model;
  // States 40 and 200: sqrt(10000)=100, so 200 -> 2 passes, 40 -> 4 passes.
  MarkovChain collapse({40, 200}, {{1, 0}, {1, 0}});
  Distribution initial = Distribution::PointMass(200);
  PlanPtr ab = MakeJoin(MakeAccess(0, 10000), MakeAccess(1, 10000),
                        JoinMethod::kSortMerge, {0}, 0, 10000);
  PlanPtr abc =
      MakeJoin(ab, MakeAccess(2, 10000), JoinMethod::kSortMerge, {1}, 1,
               10000);
  double ec =
      PlanExpectedCostDynamic(abc, q, catalog, model, collapse, initial);
  double scans = 30000;
  double phase0 = 2 * 20000;  // M=200 > sqrt(10000)
  double phase1 = 4 * 20000;  // M=40 in (cbrt, sqrt]
  EXPECT_DOUBLE_EQ(ec, scans + phase0 + phase1);
}

TEST(ExpectedCostTest, MultiParamReducesToStaticWhenPointMasses) {
  Example11 ex;
  for (const PlanPtr& plan : {ex.Plan1(), ex.Plan2()}) {
    EXPECT_NEAR(PlanExpectedCostMultiParam(plan, ex.query, ex.catalog,
                                           ex.model, ex.memory, 32),
                PlanExpectedCostStatic(plan, ex.query, ex.catalog, ex.model,
                                       ex.memory),
                1e-6);
  }
}

TEST(ExpectedCostTest, MaterializationChargeAddsIntermediateIo) {
  Catalog catalog;
  catalog.AddTable("A", 100);
  catalog.AddTable("B", 100);
  catalog.AddTable("C", 100);
  Query q;
  q.AddTable(0);
  q.AddTable(1);
  q.AddTable(2);
  q.AddPredicate(0, 1, 0.01);  // AB: 100 pages
  q.AddPredicate(1, 2, 0.01);
  PlanPtr ab = MakeJoin(MakeAccess(0, 100), MakeAccess(1, 100),
                        JoinMethod::kGraceHash, {0}, kUnsorted, 100);
  PlanPtr abc = MakeJoin(ab, MakeAccess(2, 100), JoinMethod::kGraceHash, {1},
                         kUnsorted, 100);
  CostModel plain;
  CostModelOptions mat_opts;
  mat_opts.charge_materialization = true;
  CostModel charged(mat_opts);
  Realization r = Realization::AtMeans(q, catalog, 1000);
  double without = RealizedPlanCost(abc, q, plain, r);
  double with = RealizedPlanCost(abc, q, charged, r);
  EXPECT_DOUBLE_EQ(with - without, 2 * 100);  // write + re-read AB
}

}  // namespace
}  // namespace lec
