// Operator-vs-CostModel I/O parity on a pinned corpus.
//
// The analytic CostModel (§3.6) and the storage/ operators were written to
// the same algorithms; this suite pins exactly how the measured page counts
// relate to the formulas, operator by operator:
//
//   nested loops    measured == JoinCost, bit-exact, both regimes
//   external sort   measured == SortCost, bit-exact, for spilling inputs
//                   (an in-memory sort charges one read; the model says 0)
//   sort-merge      measured == JoinCost + (|A|+|B|) exactly, whenever the
//                   per-side merge-pass counts realized by the operator
//                   match the model's stylized pass count (k-2)/2. The
//                   +(|A|+|B|) is the final merge-join read the stylized
//                   2/4/6 multipliers deliberately fold away.
//   grace hash      measured in [JoinCost, JoinCost + (|A|+|B|) + slack]
//                   in the single-partition-pass regime, where slack is
//                   the per-partition page-rounding (≤ 2·partitions).
//
// The sort-merge rows are the regression net for the per-side merge-pass
// accounting: under the old joint `lruns + rruns > fan_in` condition the
// M=6 row measured 1000, not 800.
#include <gtest/gtest.h>

#include <cstddef>

#include "cost/cost_model.h"
#include "storage/buffer_pool.h"
#include "storage/external_sort.h"
#include "storage/join_operators.h"
#include "storage/table_data.h"

namespace lec {
namespace {

struct JoinInputs {
  TableData left;
  TableData right;
  JoinColumnSpec spec;

  JoinInputs(size_t a_pages, size_t b_pages, uint64_t seed = 3) {
    Rng rng(seed);
    int64_t range = KeyRangeForSelectivity(0.01);
    left = GenerateTable(a_pages, 0, range, &rng);
    right = GenerateTable(b_pages, range, 0, &rng);
    spec.left_col = 1;
    spec.right_col = 0;
  }
};

double MeasureJoin(JoinMethod method, const JoinInputs& in, size_t memory) {
  BufferPool pool(memory);
  switch (method) {
    case JoinMethod::kSortMerge:
      SortMergeJoinOp(&pool, in.left, in.right, in.spec);
      break;
    case JoinMethod::kGraceHash:
      GraceHashJoinOp(&pool, in.left, in.right, in.spec);
      break;
    case JoinMethod::kNestedLoop:
      NestedLoopJoinOp(&pool, in.left, in.right, in.spec);
      break;
    case JoinMethod::kHybridHash:
      ADD_FAILURE() << "no engine operator for hybrid hash";
      break;
  }
  return static_cast<double>(pool.total_io());
}

TEST(OperatorModelParityTest, NestedLoopMatchesModelExactlyBothRegimes) {
  CostModel model;
  JoinInputs in(30, 10);
  // In-memory regime: M >= S + 2 = 12.
  EXPECT_DOUBLE_EQ(MeasureJoin(JoinMethod::kNestedLoop, in, 12),
                   model.JoinCost(JoinMethod::kNestedLoop, 30, 10, 12));
  EXPECT_DOUBLE_EQ(MeasureJoin(JoinMethod::kNestedLoop, in, 40),
                   model.JoinCost(JoinMethod::kNestedLoop, 30, 10, 40));
  // Spilling regime: |A| + |A|·|B|.
  EXPECT_DOUBLE_EQ(MeasureJoin(JoinMethod::kNestedLoop, in, 8),
                   model.JoinCost(JoinMethod::kNestedLoop, 30, 10, 8));
  EXPECT_DOUBLE_EQ(model.JoinCost(JoinMethod::kNestedLoop, 30, 10, 8),
                   30.0 + 30.0 * 10.0);
}

TEST(OperatorModelParityTest, ExternalSortMatchesModelExactlyWhenSpilling) {
  CostModel model;
  Rng rng(5);
  for (size_t pages : {20u, 70u, 100u}) {
    TableData t = GenerateTable(pages, 0, 500, &rng);
    for (size_t memory : {3u, 8u, 16u}) {
      if (memory >= pages) continue;  // in-memory: model charges 0
      BufferPool pool(memory);
      ExternalSortOp(&pool, t, /*col=*/0);
      EXPECT_DOUBLE_EQ(
          static_cast<double>(pool.total_io()),
          model.SortCost(static_cast<double>(pages),
                         static_cast<double>(memory)))
          << pages << " pages at M=" << memory;
    }
  }
}

TEST(OperatorModelParityTest, SortMergeMatchesModelPlusFinalMergeRead) {
  // Pinned (a, b, M) rows where the realized per-side pass counts equal the
  // model's (k-2)/2 for both sides, so the identity is exact:
  //   measured = a·(2 + 2·passes_A) + b·(2 + 2·passes_B) + (a + b)
  //            = k(M, max)·(a + b) + (a + b).
  //
  //   M=64: fan_in 63, runs {2, 1}, no passes;        k=2 ->  480
  //   M=6:  fan_in 5,  runs {17->4, 10->2}, 1 pass;   k=4 ->  800
  //   M=4:  fan_in 3,  runs {25->9->3, 15->5->2}, 2;  k=6 -> 1120
  CostModel model;
  JoinInputs in(100, 60);
  struct Row {
    size_t memory;
    double expected;
  };
  for (Row row : {Row{64, 480.0}, Row{6, 800.0}, Row{4, 1120.0}}) {
    double measured =
        MeasureJoin(JoinMethod::kSortMerge, in, row.memory);
    double analytic = model.JoinCost(JoinMethod::kSortMerge, 100, 60,
                                     static_cast<double>(row.memory));
    EXPECT_DOUBLE_EQ(measured, row.expected) << "M=" << row.memory;
    EXPECT_DOUBLE_EQ(measured, analytic + (100.0 + 60.0))
        << "M=" << row.memory;
  }
}

TEST(OperatorModelParityTest, GraceHashWithinDocumentedBoundsSinglePass) {
  // Single partition-pass regime (M > sqrt(min)): the operator reads both
  // inputs, writes every partition (page-rounded), and re-reads the
  // partitions — model + (a+b) plus at most 2 rounding pages per
  // partition pair.
  CostModel model;
  JoinInputs in(100, 36);
  for (size_t memory : {12u, 24u}) {
    double measured = MeasureJoin(JoinMethod::kGraceHash, in, memory);
    double analytic = model.JoinCost(JoinMethod::kGraceHash, 100, 36,
                                     static_cast<double>(memory));
    double parts = static_cast<double>(memory - 1);  // fan-out cap
    EXPECT_GE(measured, analytic) << "M=" << memory;
    EXPECT_LE(measured, analytic + (100.0 + 36.0) + 2.0 * parts)
        << "M=" << memory;
  }
}

TEST(OperatorModelParityTest, SortMergeTracksModelAcrossTheMemorySweep) {
  // Coarse audit across a sweep: measured stays within [model, model +
  // (a+b) + 2·(a+b)] — i.e. the deviation from the formula is bounded by
  // one extra pass — at every memory value, not just the pinned rows.
  CostModel model;
  JoinInputs in(48, 28);
  for (size_t memory = 3; memory <= 50; ++memory) {
    double measured = MeasureJoin(JoinMethod::kSortMerge, in, memory);
    double analytic = model.JoinCost(JoinMethod::kSortMerge, 48, 28,
                                     static_cast<double>(memory));
    EXPECT_GE(measured, analytic) << "M=" << memory;
    EXPECT_LE(measured, analytic + 3.0 * (48.0 + 28.0)) << "M=" << memory;
  }
}

}  // namespace
}  // namespace lec
