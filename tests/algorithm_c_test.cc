#include "optimizer/algorithm_c.h"

#include <gtest/gtest.h>

#include "cost/expected_cost.h"
#include "dist/builders.h"
#include "optimizer/exhaustive.h"
#include "optimizer/system_r.h"
#include "query/generator.h"

namespace lec {
namespace {

// Theorem 3.3: "Algorithm C gives us the LEC left-deep plan." Verified by
// brute force over the full plan space.
struct Tc {
  uint64_t seed;
  JoinGraphShape shape;
  int tables;
};

class TheoremThreeThreeTest : public ::testing::TestWithParam<Tc> {};

TEST_P(TheoremThreeThreeTest, AlgorithmCMatchesExhaustiveLec) {
  Tc tc = GetParam();
  Rng rng(tc.seed);
  WorkloadOptions wopts;
  wopts.num_tables = tc.tables;
  wopts.shape = tc.shape;
  wopts.order_by_probability = 0.5;
  Workload w = GenerateWorkload(wopts, &rng);
  CostModel model;
  OptimizerOptions opts;
  Distribution memory({{30, 0.25}, {300, 0.35}, {3000, 0.4}});
  OptimizeResult dp = OptimizeLecStatic(w.query, w.catalog, model, memory,
                                        opts);
  OptimizeResult oracle = ExhaustiveBest(
      w.query, w.catalog, opts, [&](const PlanPtr& p) {
        return PlanExpectedCostStatic(p, w.query, w.catalog, model, memory);
      });
  EXPECT_NEAR(dp.objective, oracle.objective,
              1e-9 * std::max(1.0, oracle.objective));
  EXPECT_NEAR(dp.objective,
              PlanExpectedCostStatic(dp.plan, w.query, w.catalog, model,
                                     memory),
              1e-9 * std::max(1.0, dp.objective));
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, TheoremThreeThreeTest,
    ::testing::Values(Tc{11, JoinGraphShape::kChain, 4},
                      Tc{12, JoinGraphShape::kChain, 5},
                      Tc{13, JoinGraphShape::kStar, 5},
                      Tc{14, JoinGraphShape::kCycle, 4},
                      Tc{15, JoinGraphShape::kClique, 4},
                      Tc{16, JoinGraphShape::kRandom, 5},
                      Tc{17, JoinGraphShape::kStar, 4},
                      Tc{18, JoinGraphShape::kRandom, 4}));

// Theorem 3.4: with the Markov memory model, Algorithm C still returns the
// LEC plan.
class TheoremThreeFourTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TheoremThreeFourTest, DynamicAlgorithmCMatchesExhaustive) {
  Rng rng(GetParam());
  WorkloadOptions wopts;
  wopts.num_tables = 4;
  wopts.shape = GetParam() % 2 == 0 ? JoinGraphShape::kChain
                                    : JoinGraphShape::kStar;
  wopts.order_by_probability = 0.5;
  Workload w = GenerateWorkload(wopts, &rng);
  CostModel model;
  OptimizerOptions opts;
  MarkovChain chain = MarkovChain::Drift({30, 300, 3000}, 0.5);
  Distribution initial({{300, 0.5}, {3000, 0.5}});
  OptimizeResult dp =
      OptimizeLecDynamic(w.query, w.catalog, model, chain, initial, opts);
  OptimizeResult oracle = ExhaustiveBest(
      w.query, w.catalog, opts, [&](const PlanPtr& p) {
        return PlanExpectedCostDynamic(p, w.query, w.catalog, model, chain,
                                       initial);
      });
  EXPECT_NEAR(dp.objective, oracle.objective,
              1e-9 * std::max(1.0, oracle.objective));
}

INSTANTIATE_TEST_SUITE_P(Seeds, TheoremThreeFourTest,
                         ::testing::Range<uint64_t>(21, 31));

TEST(AlgorithmCTest, OneBucketReducesToSystemR) {
  // "The algorithm with one bucket reduces to the standard System R
  // algorithm" (§3.7).
  Rng rng(5);
  WorkloadOptions wopts;
  wopts.num_tables = 5;
  Workload w = GenerateWorkload(wopts, &rng);
  CostModel model;
  Distribution point = Distribution::PointMass(800);
  OptimizeResult lec = OptimizeLecStatic(w.query, w.catalog, model, point);
  OptimizeResult lsc = OptimizeLsc(w.query, w.catalog, model, 800);
  EXPECT_NEAR(lec.objective, lsc.objective, 1e-9);
  EXPECT_TRUE(PlanEquals(lec.plan, lsc.plan));
}

TEST(AlgorithmCTest, Example11ChoosesGraceHashPlusSort) {
  Catalog catalog;
  catalog.AddTable("A", 1'000'000);
  catalog.AddTable("B", 400'000);
  Query q;
  q.AddTable(0);
  q.AddTable(1);
  q.AddPredicate(0, 1, 3000.0 / (1e6 * 4e5));
  q.RequireOrder(0);
  CostModel model;
  Distribution memory = Distribution::TwoPoint(2000, 0.8, 700, 0.2);
  // LSC (either point estimate) picks Plan 1 = sort-merge...
  OptimizeResult lsc = OptimizeLscAtEstimate(q, catalog, model, memory,
                                             PointEstimate::kMode);
  EXPECT_EQ(lsc.plan->method, JoinMethod::kSortMerge);
  // ...but the LEC plan is Plan 2 = Grace hash + sort.
  OptimizeResult lec = OptimizeLecStatic(q, catalog, model, memory);
  ASSERT_EQ(lec.plan->kind, PlanNode::Kind::kSort);
  EXPECT_EQ(lec.plan->left->method, JoinMethod::kGraceHash);
  // And its expected cost is lower than the LSC plan's expected cost.
  double lsc_ec =
      PlanExpectedCostStatic(lsc.plan, q, catalog, model, memory);
  EXPECT_LT(lec.objective, lsc_ec);
  EXPECT_DOUBLE_EQ(lec.objective, 1.4e6 + 2 * 1.4e6 + 12000);
  EXPECT_DOUBLE_EQ(lsc_ec, 1.4e6 + (0.8 * 2 + 0.2 * 4) * 1.4e6);
}

// §3.1: "the expected execution cost of the LEC plan is at least as low as
// that of any specific LSC plan" — property-checked on random workloads.
class LecDominatesLscTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LecDominatesLscTest, LecNeverWorseThanAnyLscPlan) {
  Rng rng(GetParam());
  WorkloadOptions wopts;
  wopts.num_tables = static_cast<int>(3 + GetParam() % 4);
  wopts.shape = static_cast<JoinGraphShape>(GetParam() % 5);
  wopts.order_by_probability = 0.3;
  Workload w = GenerateWorkload(wopts, &rng);
  CostModel model;
  Distribution memory({{20, 0.2}, {150, 0.3}, {1200, 0.3}, {9000, 0.2}});
  OptimizeResult lec = OptimizeLecStatic(w.query, w.catalog, model, memory);
  for (const Bucket& m : memory.buckets()) {
    OptimizeResult lsc = OptimizeLsc(w.query, w.catalog, model, m.value);
    double lsc_ec =
        PlanExpectedCostStatic(lsc.plan, w.query, w.catalog, model, memory);
    EXPECT_LE(lec.objective, lsc_ec + 1e-9 * std::max(1.0, lsc_ec))
        << "LSC at memory " << m.value;
  }
  // Also dominates mean/mode-estimate plans.
  for (PointEstimate est : {PointEstimate::kMean, PointEstimate::kMode}) {
    OptimizeResult lsc =
        OptimizeLscAtEstimate(w.query, w.catalog, model, memory, est);
    double lsc_ec =
        PlanExpectedCostStatic(lsc.plan, w.query, w.catalog, model, memory);
    EXPECT_LE(lec.objective, lsc_ec + 1e-9 * std::max(1.0, lsc_ec));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LecDominatesLscTest,
                         ::testing::Range<uint64_t>(40, 70));

TEST(AlgorithmCTest, DynamicStaticChainMatchesStaticOptimizer) {
  Rng rng(77);
  WorkloadOptions wopts;
  wopts.num_tables = 5;
  Workload w = GenerateWorkload(wopts, &rng);
  CostModel model;
  Distribution memory({{100, 0.5}, {1000, 0.5}});
  MarkovChain frozen = MarkovChain::Static({100, 1000});
  OptimizeResult stat = OptimizeLecStatic(w.query, w.catalog, model, memory);
  OptimizeResult dyn =
      OptimizeLecDynamic(w.query, w.catalog, model, frozen, memory);
  EXPECT_NEAR(stat.objective, dyn.objective, 1e-9 * stat.objective);
}

TEST(AlgorithmCTest, DynamicAnticipatesMemoryCollapse) {
  // Memory starts high but always collapses after phase 0. A static
  // optimizer seeing only the initial distribution over-trusts the high
  // memory; the dynamic optimizer must not.
  Catalog catalog;
  catalog.AddTable("A", 10000);
  catalog.AddTable("B", 10000);
  catalog.AddTable("C", 10000);
  Query q;
  q.AddTable(0);
  q.AddTable(1);
  q.AddTable(2);
  q.AddPredicate(0, 1, 1e-4);
  q.AddPredicate(1, 2, 1e-4);
  CostModel model;
  MarkovChain collapse({40, 200}, {{1, 0}, {1, 0}});
  Distribution initial = Distribution::PointMass(200);
  OptimizeResult dyn =
      OptimizeLecDynamic(q, catalog, model, collapse, initial);
  double true_ec = PlanExpectedCostDynamic(dyn.plan, q, catalog, model,
                                           collapse, initial);
  EXPECT_NEAR(dyn.objective, true_ec, 1e-9 * true_ec);
  // Compare against static optimization at the initial distribution: its
  // chosen plan's true dynamic EC must be >= the dynamic optimizer's.
  OptimizeResult stat = OptimizeLecStatic(q, catalog, model, initial);
  double stat_true = PlanExpectedCostDynamic(stat.plan, q, catalog, model,
                                             collapse, initial);
  EXPECT_LE(dyn.objective, stat_true + 1e-9 * stat_true);
}

}  // namespace
}  // namespace lec
