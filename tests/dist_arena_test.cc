// Allocation accounting for the arena-backed DP hot path.
//
// Three properties are pinned here:
//   * DistArena semantics: bump allocation, Reset rewind, high-water-mark
//     tracking, and graceful regrow on exhaustion (with the one-time
//     coalesce on the following Reset).
//   * The tentpole claim of PR 4: a warmed RunDpInto performs ZERO heap
//     allocations — enforced with a counting global operator new, not a
//     proxy metric.
//   * Algorithm D's kernel pipeline reaches arena steady state: after the
//     first optimization on a workload shape, repeat runs never grow the
//     injected arena (heap_allocations() stops moving).
#include "dist/arena.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "cost/cost_policies.h"
#include "dist/builders.h"
#include "optimizer/algorithm_d.h"
#include "optimizer/dp_common.h"
#include "query/generator.h"

// ---------------------------------------------------------------------------
// Counting allocator: every path into the heap ticks g_news. Deltas across
// a code region measure its allocation count exactly (single-threaded
// tests; gtest's own bookkeeping between regions does not interfere).
// ---------------------------------------------------------------------------

namespace {

std::atomic<size_t> g_news{0};

void* CountedAlloc(std::size_t n) {
  ++g_news;
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}

void* CountedAlignedAlloc(std::size_t n, std::size_t align) {
  ++g_news;
  void* p = nullptr;
  if (posix_memalign(&p, align < sizeof(void*) ? sizeof(void*) : align,
                     n ? n : 1) != 0) {
    throw std::bad_alloc();
  }
  return p;
}

}  // namespace

void* operator new(std::size_t n) { return CountedAlloc(n); }
void* operator new[](std::size_t n) { return CountedAlloc(n); }
void* operator new(std::size_t n, std::align_val_t a) {
  return CountedAlignedAlloc(n, static_cast<std::size_t>(a));
}
void* operator new[](std::size_t n, std::align_val_t a) {
  return CountedAlignedAlloc(n, static_cast<std::size_t>(a));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace lec {
namespace {

TEST(DistArenaTest, BumpAllocationAndReset) {
  DistArena arena(128);
  size_t base_allocs = arena.heap_allocations();
  double* a = arena.AllocDoubles(10);
  double* b = arena.AllocDoubles(20);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_NE(a, b);
  a[0] = 1.0;
  b[19] = 2.0;
  EXPECT_EQ(arena.used_doubles(), 30u);
  EXPECT_EQ(arena.heap_allocations(), base_allocs);  // fits the first block

  arena.Reset();
  EXPECT_EQ(arena.used_doubles(), 0u);
  EXPECT_EQ(arena.heap_allocations(), base_allocs);  // Reset frees nothing
  // Post-reset allocations reuse the same storage.
  double* c = arena.AllocDoubles(10);
  EXPECT_EQ(c, a);
}

TEST(DistArenaTest, HighWaterMarkSurvivesReset) {
  DistArena arena(128);
  arena.AllocDoubles(10);
  arena.AllocDoubles(20);
  EXPECT_EQ(arena.high_water_doubles(), 30u);
  arena.Reset();
  arena.AllocDoubles(5);
  EXPECT_EQ(arena.used_doubles(), 5u);
  EXPECT_EQ(arena.high_water_doubles(), 30u);  // the mark is lifetime-max
}

TEST(DistArenaTest, ExhaustionRegrowsGracefullyThenCoalesces) {
  DistArena arena(64);
  size_t initial_allocs = arena.heap_allocations();
  // Exhaust the first block: growth must be transparent to the caller.
  double* big = arena.AllocDoubles(1000);
  ASSERT_NE(big, nullptr);
  big[999] = 42.0;
  EXPECT_GT(arena.heap_allocations(), initial_allocs);
  EXPECT_GE(arena.capacity_doubles(), 1064u);

  // The next Reset coalesces to the high-water mark (one allocation). A
  // first full round of the real workload may still grow once more — the
  // HWM at the first coalesce predates the workload's true peak — and the
  // following Reset re-coalesces.
  arena.Reset();
  arena.AllocDoubles(1000);
  arena.AllocDoubles(60);
  arena.Reset();
  size_t after_warm = arena.heap_allocations();
  EXPECT_EQ(arena.capacity_doubles(), arena.high_water_doubles());
  // From here the same workload is steady-state: no heap traffic, ever.
  for (int round = 0; round < 3; ++round) {
    arena.AllocDoubles(1000);
    arena.AllocDoubles(60);
    arena.Reset();
  }
  EXPECT_EQ(arena.heap_allocations(), after_warm);
}

TEST(DistArenaTest, ZeroSizedAllocationIsValid) {
  DistArena arena(64);
  double* p = arena.AllocDoubles(0);
  double* q = arena.AllocDoubles(0);
  EXPECT_NE(p, nullptr);
  EXPECT_NE(p, q);  // distinct live objects
}

// ---------------------------------------------------------------------------
// The tentpole property: zero steady-state heap allocations in the DP core.
// ---------------------------------------------------------------------------

Workload ChainWorkload(int n) {
  Rng rng(20260729);
  WorkloadOptions wopts;
  wopts.num_tables = n;
  wopts.shape = JoinGraphShape::kChain;
  return GenerateWorkload(wopts, &rng);
}

TEST(DpAllocationTest, WarmRunDpIntoAllocatesNothing) {
  Workload w = ChainWorkload(10);
  CostModel model;
  Distribution memory = UniformBuckets(50, 5000, 27);
  OptimizerOptions opts;
  DpContext ctx(w.query, w.catalog, opts);
  LecStaticCostProvider lec{model, memory};
  LscCostProvider lsc{model, 800};

  DpScratch scratch;
  OptimizeResult result;
  RunDpInto(ctx, lec, &scratch, &result);  // warm-up sizes the scratch
  RunDpInto(ctx, lsc, &scratch, &result);
  double warm_objective = result.objective;

  size_t before = g_news.load();
  for (int round = 0; round < 5; ++round) {
    RunDpInto(ctx, lec, &scratch, &result);
    RunDpInto(ctx, lsc, &scratch, &result);
  }
  size_t allocations = g_news.load() - before;
  EXPECT_EQ(allocations, 0u)
      << "the warmed DP core must not touch the heap";
  EXPECT_EQ(result.objective, warm_objective);  // and stays deterministic

  // The core's numbers are the real ones: materializing through RunDp
  // agrees with the legacy map-based DP bit for bit. Counters compare
  // exactly only with pruning off — RunDpLegacy never prunes.
  OptimizerOptions off_opts;
  off_opts.dp_pruning = DpPruning::kOff;
  DpContext off_ctx(w.query, w.catalog, off_opts);
  OptimizeResult via_rundp = RunDp(off_ctx, lec);
  OptimizeResult via_legacy = RunDpLegacy(off_ctx, lec);
  EXPECT_EQ(via_rundp.objective, via_legacy.objective);
  EXPECT_TRUE(PlanEquals(via_rundp.plan, via_legacy.plan));
  EXPECT_EQ(via_rundp.candidates_considered,
            via_legacy.candidates_considered);
  EXPECT_EQ(via_rundp.cost_evaluations, via_legacy.cost_evaluations);

  // The measured loop above ran with pruning engaged (kAuto defaults on
  // for this provider), so the zero-allocation property covers the
  // branch-and-bound path: incumbent, floors and all. The pruned result
  // must still be bit-identical — only cheaper.
  OptimizeResult pruned = RunDp(ctx, lec);
  EXPECT_EQ(pruned.objective, via_legacy.objective);
  EXPECT_TRUE(PlanEquals(pruned.plan, via_legacy.plan));
  EXPECT_LE(pruned.candidates_considered, via_legacy.candidates_considered);
  EXPECT_GT(pruned.pruned_expansions + pruned.pruned_candidates +
                pruned.pruned_entries,
            0u)
      << "a 10-table chain should give the bound something to cut";
}

TEST(DpAllocationTest, WarmPredicateLookupsIntoAllocateNothing) {
  // The *Into predicate lookups share the DP core's contract: after one
  // warming pass sizes the scratch vector, repeat calls never touch the
  // heap — they only clear and refill the caller's buffer.
  Workload w = ChainWorkload(10);
  const Query& q = w.query;
  TableSet all = q.AllTables();
  TableSet left = 0b11111;  // first five tables of the 10-table chain
  TableSet right = all & ~left;

  std::vector<int> crossing, internal;
  q.CrossingPredicatesInto(left, right, &crossing);  // warm-up sizes it
  q.InternalPredicatesInto(all, &internal);
  std::vector<int> want_crossing = q.CrossingPredicates(left, right);
  std::vector<int> want_internal = q.InternalPredicates(all);

  size_t before = g_news.load();
  for (int round = 0; round < 8; ++round) {
    q.CrossingPredicatesInto(left, right, &crossing);
    q.InternalPredicatesInto(all, &internal);
  }
  EXPECT_EQ(g_news.load() - before, 0u)
      << "warmed *Into lookups must not touch the heap";
  EXPECT_EQ(crossing, want_crossing);  // and match the allocating variants
  EXPECT_EQ(internal, want_internal);
}

TEST(DpAllocationTest, AlgorithmDArenaReachesSteadyState) {
  Workload w = ChainWorkload(6);
  CostModel model;
  Distribution memory = UniformBuckets(50, 5000, 9);
  DistArena arena;
  OptimizerOptions opts;
  opts.dist_arena = &arena;

  OptimizeResult warm =
      OptimizeAlgorithmD(w.query, w.catalog, model, memory, opts);
  size_t allocs_after_warm = arena.heap_allocations();
  size_t hwm_after_warm = arena.high_water_doubles();
  // One more run may coalesce (if the warm-up grew past the first block);
  // from then on the arena must be silent.
  OptimizeResult second =
      OptimizeAlgorithmD(w.query, w.catalog, model, memory, opts);
  size_t allocs_steady = arena.heap_allocations();
  EXPECT_LE(allocs_steady, allocs_after_warm + 1);
  for (int round = 0; round < 3; ++round) {
    OptimizeResult again =
        OptimizeAlgorithmD(w.query, w.catalog, model, memory, opts);
    EXPECT_EQ(again.objective, warm.objective);  // bit-stable across reuse
  }
  EXPECT_EQ(arena.heap_allocations(), allocs_steady);
  EXPECT_EQ(arena.high_water_doubles(), hwm_after_warm);
  EXPECT_EQ(second.objective, warm.objective);
}

}  // namespace
}  // namespace lec
