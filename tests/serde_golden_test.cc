// Golden-snapshot stability for the serving wire format.
//
// Artifacts are checked in under tests/golden/ and pinned byte-for-byte,
// named by the WIRE version they were written at:
//
//   serde_snapshot_v3.txt      one serialized ServeRequest + the
//                              OptimizeResult lec_static computes for it
//   plan_cache_snapshot_v3.txt a PlanCache snapshot holding lec_static and
//                              algorithm_d entries for the same workload
//   query_signature_v3.bin     the raw canonical QuerySignature bytes
//                              (schema v3) of the lec_static request
//   serde_snapshot_v1.txt      the same bundle as written by the previous
//                              wire format (version-2 stream; the name
//                              predates the by-version convention)
//   plan_cache_snapshot_v1.txt ditto for the cache snapshot — kept as the
//                              record of what old snapshots look like, and
//                              as the fixture for the v2→v3 signature
//                              upgrade path (QuerySignature::
//                              UpgradeCanonical)
//
// Together they pin three things at once: the wire format (any token
// added, removed or re-ordered changes the bytes), the hex-float encoding
// (any bit of any double changes the bytes), and compute determinism (the
// stored objective is the optimizer's actual output — if the DP starts
// producing different bits, this test is the tripwire). A version bump of
// kFormatVersion must come with NEW golden files (v4, ...), keeping the
// old files as the record — and as upgrade-path fixtures while the old
// version stays inside [kMinReadVersion, kFormatVersion].
//
// Regenerating after an intentional format change:
//
//   UPDATE_GOLDEN=1 ctest -R SerdeGolden
//
// then review the diff like any other code change. Only the
// current-version files regenerate; the old-version files are frozen.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "dist/simd.h"
#include "service/plan_cache.h"
#include "service/serde.h"
#include "util/rng.h"

namespace lec {
namespace {

std::string GoldenPath(const std::string& name) {
  return std::string(LECOPT_SOURCE_DIR) + "/tests/golden/" + name;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Compares `bytes` against the golden file, regenerating under
/// UPDATE_GOLDEN=1 (the ExplainGolden workflow).
void CheckGolden(const std::string& name, const std::string& bytes) {
  std::string path = GoldenPath(name);
  const char* update = std::getenv("UPDATE_GOLDEN");
  if (update != nullptr && std::string(update) == "1") {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << bytes;
    GTEST_SKIP() << "regenerated " << path;
  }
  std::string golden = ReadFile(path);
  ASSERT_FALSE(golden.empty())
      << "missing golden file " << path
      << "; generate it with UPDATE_GOLDEN=1 ctest -R SerdeGolden";
  EXPECT_EQ(bytes, golden)
      << "serialized bytes drifted from " << path
      << "; if the format change is intentional, regenerate with "
         "UPDATE_GOLDEN=1 and review the diff (a wire-format break needs a "
         "kFormatVersion bump and NEW golden files instead)";
}

class SerdeGoldenTest : public ::testing::Test {
 protected:
  SerdeGoldenTest() : memory_({{64, 0.25}, {512, 0.5}, {4096, 0.25}}) {
    Rng rng(20260729);
    WorkloadOptions wopts;
    wopts.num_tables = 4;
    wopts.shape = JoinGraphShape::kChain;
    wopts.selectivity_spread = 3.0;
    wopts.table_size_spread = 2.0;
    wopts.order_by_probability = 1.0;
    workload_ = GenerateWorkload(wopts, &rng);
  }

  OptimizeRequest RequestFor(PlanCache* cache) {
    OptimizeRequest req;
    req.query = &workload_.query;
    req.catalog = &workload_.catalog;
    req.model = &model_;
    req.memory = &memory_;
    req.options.plan_cache = cache;
    return req;
  }

  /// Optimizes with wall time pinned to zero — the one nondeterministic
  /// field, exactly as the ExplainGolden tests pin it.
  OptimizeResult PinnedOptimize(StrategyId id) {
    OptimizeResult r = optimizer_.Optimize(id, RequestFor(nullptr));
    r.elapsed_seconds = 0;
    return r;
  }

  // Golden bytes pin the optimizer's exact output bits, which must not
  // depend on the host CPU's SIMD tier: run the whole fixture at the
  // scalar reference level. SIMD-vs-scalar drift is bounded and checked by
  // the fuzz invariants (I7), not by goldens.
  simd::ScopedLevel scalar_level_{simd::Level::kScalar};
  Workload workload_;
  Distribution memory_;
  CostModel model_;
  Optimizer optimizer_;
};

TEST_F(SerdeGoldenTest, RequestAndResultBundleIsByteStable) {
  serde::ServeRequest request;
  request.strategy = "lec_static";
  request.workload = workload_;
  request.memory = memory_;
  OptimizeResult result = PinnedOptimize(StrategyId::kLecStatic);

  std::ostringstream out;
  serde::Writer w(out);
  serde::Write(w, request);
  serde::Write(w, result);
  CheckGolden("serde_snapshot_v3.txt", out.str());
}

TEST_F(SerdeGoldenTest, GoldenBundleDeserializesAndReproducesTheObjective) {
  // Both the current bundle and the frozen version-2 one (the wire window
  // is [kMinReadVersion, kFormatVersion] = [2, 3]) must parse and replay
  // to identical bits — v2 streams simply lack the v3 trailing fields,
  // which take their defaults.
  for (const char* name : {"serde_snapshot_v3.txt", "serde_snapshot_v1.txt"}) {
    SCOPED_TRACE(name);
    std::string golden = ReadFile(GoldenPath(name));
    if (golden.empty()) GTEST_SKIP() << name << " not generated yet";
    std::istringstream in(golden);
    serde::Reader r(in);
    serde::ServeRequest request = serde::ReadServeRequest(r);
    OptimizeResult stored = serde::ReadOptimizeResult(r);

    // Re-optimizing the DESERIALIZED request must land on the stored
    // result exactly: save → load → serve reproduces identical
    // objectives/plans.
    OptimizeRequest req;
    req.query = &request.workload.query;
    req.catalog = &request.workload.catalog;
    req.model = &model_;
    req.memory = &request.memory;
    req.options = request.options;
    Optimizer optimizer;
    OptimizeResult recomputed =
        optimizer.Optimize(*ParseStrategy(request.strategy), req);
    EXPECT_EQ(recomputed.objective, stored.objective);
    EXPECT_TRUE(PlanEquals(recomputed.plan, stored.plan));
    EXPECT_EQ(recomputed.cost_evaluations, stored.cost_evaluations);
  }
}

TEST_F(SerdeGoldenTest, QuerySignatureBytesAreByteStable) {
  // The schema-v3 canonical signature, pinned raw: these bytes are the
  // plan cache's key, so any drift silently severs every warm snapshot.
  QuerySignature sig =
      QuerySignature::Compute(StrategyId::kLecStatic, RequestFor(nullptr));
  CheckGolden("query_signature_v3.bin", sig.canonical);
}

TEST_F(SerdeGoldenTest, PlanCacheSnapshotIsByteStableAndServes) {
  // Entries inserted by hand with pinned wall times, so the snapshot bytes
  // are deterministic.
  PlanCache cache;
  for (StrategyId id : {StrategyId::kLecStatic, StrategyId::kAlgorithmD}) {
    cache.Insert(QuerySignature::Compute(id, RequestFor(nullptr)),
                 PinnedOptimize(id));
  }
  std::string snapshot = cache.SaveSnapshot();
  CheckGolden("plan_cache_snapshot_v3.txt", snapshot);

  // A service warm-loading the GOLDEN snapshot serves both strategies from
  // cache, bit-identically to recomputing.
  std::string golden = ReadFile(GoldenPath("plan_cache_snapshot_v3.txt"));
  if (golden.empty()) GTEST_SKIP() << "golden not generated yet";
  PlanCache warmed;
  ASSERT_EQ(warmed.LoadSnapshot(golden), 2u);
  for (StrategyId id : {StrategyId::kLecStatic, StrategyId::kAlgorithmD}) {
    OptimizeResult served = optimizer_.Optimize(id, RequestFor(&warmed));
    OptimizeResult recomputed = PinnedOptimize(id);
    EXPECT_EQ(served.objective, recomputed.objective);
    EXPECT_TRUE(PlanEquals(served.plan, recomputed.plan));
  }
  EXPECT_EQ(warmed.stats().hits, 2u);
  EXPECT_EQ(warmed.stats().misses, 0u);

  // And the reloaded cache re-saves the identical bytes (canonical entry
  // order makes snapshots a function of contents, not history).
  EXPECT_EQ(warmed.SaveSnapshot(), golden);
}

TEST_F(SerdeGoldenTest, V2SnapshotUpgradesAndKeepsServingHits) {
  // The frozen version-2 snapshot is the upgrade-path fixture: LoadSnapshot
  // runs every entry's canonical signature through
  // QuerySignature::UpgradeCanonical, so yesterday's cache must keep
  // serving today's (schema-v3) requests from warm entries — bit-identical
  // to recomputing.
  std::string old = ReadFile(GoldenPath("plan_cache_snapshot_v1.txt"));
  ASSERT_FALSE(old.empty()) << "frozen v2-era golden missing";
  PlanCache warmed;
  ASSERT_EQ(warmed.LoadSnapshot(old), 2u);
  for (StrategyId id : {StrategyId::kLecStatic, StrategyId::kAlgorithmD}) {
    OptimizeResult served = optimizer_.Optimize(id, RequestFor(&warmed));
    OptimizeResult recomputed = PinnedOptimize(id);
    EXPECT_EQ(served.objective, recomputed.objective);
    EXPECT_TRUE(PlanEquals(served.plan, recomputed.plan));
    EXPECT_EQ(served.cost_evaluations, recomputed.cost_evaluations);
  }
  EXPECT_EQ(warmed.stats().hits, 2u);
  EXPECT_EQ(warmed.stats().misses, 0u);

  // Upgraded entries re-save as EXACT current-version bytes: the upgraded
  // cache and a freshly computed one are indistinguishable on disk.
  std::string fresh = ReadFile(GoldenPath("plan_cache_snapshot_v3.txt"));
  if (!fresh.empty()) EXPECT_EQ(warmed.SaveSnapshot(), fresh);

  // And the raw signature upgrade is idempotent: v3 bytes pass through
  // unchanged.
  QuerySignature sig =
      QuerySignature::Compute(StrategyId::kLecStatic, RequestFor(nullptr));
  EXPECT_EQ(QuerySignature::UpgradeCanonical(sig.canonical), sig.canonical);
}

}  // namespace
}  // namespace lec
